module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic

type sweep_point = {
  m : int;
  vertical_per_flop : float;
  horizontal_per_flop : float;
  verdicts : (string * Balance.verdict) list;
}

let sweep ?(d = 3) ?(n = 1000) ~ms () =
  List.map
    (fun m ->
      let vertical_per_flop = Analytic.gmres_vertical_per_flop ~m in
      {
        m;
        vertical_per_flop;
        horizontal_per_flop =
          Analytic.gmres_horizontal_per_flop ~d ~n ~m
            ~nodes:(List.hd Machines.table1).Machines.nodes;
        verdicts =
          List.map
            (fun (mc : Machines.t) ->
              ( mc.name,
                Balance.classify_lower ~lb_per_flop:vertical_per_flop
                  ~balance:mc.vertical_balance ))
            Machines.table1;
      })
    ms

let crossover_m ~balance =
  if balance <= 0.0 then invalid_arg "Gmres_analysis.crossover_m";
  (6.0 /. balance) -. 20.0

let table ?d ?n ~ms () =
  let machine_names = List.map (fun (m : Machines.t) -> m.Machines.name) Machines.table1 in
  let t =
    Table.create
      ~headers:
        ([ "m"; "LB_vert/FLOP"; "UB_horiz/FLOP" ]
        @ List.map (fun n -> n ^ " verdict") machine_names)
  in
  List.iter
    (fun p ->
      Table.add_row t
        ([
           string_of_int p.m;
           Printf.sprintf "%.4f" p.vertical_per_flop;
           Printf.sprintf "%.2e" p.horizontal_per_flop;
         ]
        @ List.map (fun (_, v) -> Balance.verdict_to_string v) p.verdicts))
    (sweep ?d ?n ~ms ());
  t

type structure_check = {
  grid_points : int;
  iters : int;
  h_wavefront : int;
  norm_wavefront : int;
  decomposed_lb : int;
  belady_ub : int;
  s : int;
}

(* Piece [i] holds basis vector [v_i] (produced at the end of outer
   iteration [i-1]) plus iteration [i]'s SpMV, dot products,
   orthogonalization chain and norm — so both the w-paths and the
   v_i-paths to [h_{i,i}] survive a disjoint decomposition. *)
let slices (gm : Dmc_gen.Solver.gmres) =
  let iters = Array.length gm.iterations in
  let bound t = gm.iterations.(t).norm in
  fun v ->
    let rec find t = if t >= iters then iters - 1 else if v <= bound t then t else find (t + 1) in
    find 0

let default_ms = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let structure ?(dims = [ 5; 5 ]) ?(iters = 3) ?(s = 16) () =
  let gm = Dmc_gen.Solver.gmres ~dims ~iters in
  let g = gm.graph in
  let parts =
    Dmc_core.Decompose.iteration_slices g ~slice_of:(slices gm) ~n_slices:iters
  in
  let pieces =
    Array.mapi (fun t part -> (part, [ gm.iterations.(t).h_diag ])) parts
  in
  let last = gm.iterations.(iters - 1) in
  {
    grid_points = Dmc_gen.Grid.size gm.grid;
    iters;
    h_wavefront = Dmc_core.Wavefront.min_wavefront g last.h_diag;
    norm_wavefront = Dmc_core.Wavefront.min_wavefront g last.norm;
    decomposed_lb = Dmc_core.Decompose.wavefront_sum g ~pieces ~s;
    belady_ub = Dmc_core.Strategy.io g ~s;
    s;
  }

(* ------------------------------------------------------------------ *)
(* Experiment parts: the m-sweep and the Theorem-9 machinery. *)

module J = Dmc_util.Json
module P = Experiment.P

let sweep_part () =
  let points = sweep ~ms:default_ms () in
  let small_m_bound =
    List.for_all
      (fun p ->
        p.m > 8
        || List.for_all (fun (_, v) -> v = Balance.Bandwidth_bound) p.verdicts)
      points
  in
  let large_m_free =
    List.exists
      (fun p -> List.for_all (fun (_, v) -> v = Balance.Indeterminate) p.verdicts)
      points
  in
  J.Obj
    [
      ("table", Doc.block_to_json (Doc.Table (table ~ms:default_ms ())));
      ("small_m_bound", J.Bool small_m_bound);
      ("large_m_free", J.Bool large_m_free);
    ]

let structure_to_json (c : structure_check) =
  J.Obj
    [
      ("grid_points", J.Int c.grid_points);
      ("iters", J.Int c.iters);
      ("h_wavefront", J.Int c.h_wavefront);
      ("norm_wavefront", J.Int c.norm_wavefront);
      ("decomposed_lb", J.Int c.decomposed_lb);
      ("belady_ub", J.Int c.belady_ub);
      ("s", J.Int c.s);
    ]

let structure_of_json p =
  {
    grid_points = P.int p "grid_points";
    iters = P.int p "iters";
    h_wavefront = P.int p "h_wavefront";
    norm_wavefront = P.int p "norm_wavefront";
    decomposed_lb = P.int p "decomposed_lb";
    belady_ub = P.int p "belady_ub";
    s = P.int p "s";
  }

let parts =
  [
    { Experiment.part = "sweep"; run = sweep_part };
    {
      Experiment.part = "structure";
      run = (fun () -> structure_to_json (structure ()));
    };
  ]

let doc_of_parts payloads =
  match payloads with
  | [ sw; st ] ->
      let s = structure_of_json st in
      let crossovers =
        String.concat ""
          (List.map
             (fun (m : Machines.t) ->
               Printf.sprintf "  crossover m* (%s): %.1f\n" m.name
                 (crossover_m ~balance:m.vertical_balance))
             Machines.table1)
      in
      {
        Doc.name = "gmres";
        blocks =
          [
            Doc.Section "GMRES (Sec 5.3): vertical cost 6/(m+20) vs machine balance";
            Experiment.block_field sw "table";
            Doc.Text crossovers;
            Doc.Section
              "GMRES: Theorem-9 machinery on a concrete CDAG (5^2 grid, 3 iterations)";
            Doc.Text
              (Printf.sprintf
                 "  grid points n^d = %d, iterations = %d, S = %d\n\
                 \  measured wavefront at h_{i,i} = %d (paper: >= 2 n^d = %d)\n\
                 \  measured wavefront at the norm = %d (paper: >= n^d = %d)\n\
                 \  decomposed lower bound = %d, Belady upper bound = %d\n"
                 s.grid_points s.iters s.s s.h_wavefront (2 * s.grid_points)
                 s.norm_wavefront s.grid_points s.decomposed_lb s.belady_ub);
            Doc.check "GMRES bandwidth-bound at small m on every machine"
              (P.bool sw "small_m_bound");
            Doc.check "large m escapes the bandwidth bound"
              (P.bool sw "large_m_free");
            Doc.check "wavefront at h_{i,i} reaches 2 n^d"
              (s.h_wavefront >= 2 * s.grid_points);
            Doc.check "wavefront at the norm reaches n^d"
              (s.norm_wavefront >= s.grid_points);
            Doc.check "decomposed LB <= measured execution"
              (s.decomposed_lb <= s.belady_ub);
          ];
      }
  | _ -> Experiment.malformed "gmres experiment expects 2 part payloads"
