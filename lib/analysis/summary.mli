(** The one-page digest: every algorithm the repository analyzes, its
    bound as a formula, its per-FLOP floor, and the verdicts on the
    Table-1 machines — the takeaway table of the whole reproduction. *)

val table : unit -> Dmc_util.Table.t

val parts : Experiment.part list
(** One part per digest row. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** The digest document; checks the headline verdict pattern (CG always
    bound, Jacobi 2D/3D never, GMRES crossing over). *)
