(** Reproduction of Table 1: specifications of the computing systems
    used throughout Section 5. *)

val table : unit -> Dmc_util.Table.t
(** The machine-specification table (name, nodes, memory, cache,
    vertical and horizontal balance). *)

val render : unit -> string

val parts : Experiment.part list
(** One part per Table-1 machine (a pre-rendered row each). *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
