module Table = Dmc_util.Table
module Rng = Dmc_util.Rng
module Cdag = Dmc_cdag.Cdag
module Bounds = Dmc_core.Bounds
module Strategy = Dmc_core.Strategy

type case = {
  name : string;
  n_vertices : int;
  s : int;
  best_lb : int;
  optimal : int option;
  belady : int;
  rb_optimal : int option;
  sound : bool;
}

let fixtures ?(seed = 42) ?(cases = 8) () =
  let rng = Rng.create seed in
  let fixed =
    [
      ("chain8", Dmc_gen.Shapes.chain 8);
      ("tree8", Dmc_gen.Shapes.reduction_tree 8);
      ("diamond3x3", Dmc_gen.Shapes.diamond ~rows:3 ~cols:3);
      ("diamond4x4", Dmc_gen.Shapes.diamond ~rows:4 ~cols:4);
      ("fft4", Dmc_gen.Fft.butterfly 2);
      ("pyramid4", Dmc_gen.Shapes.pyramid 4);
      ("binomial3", Dmc_gen.Shapes.binomial 3);
      ("fanin3x3", Dmc_gen.Shapes.two_level_fanin ~fanin:3 ~mids:3);
      ("outer3", Dmc_gen.Linalg.outer_product 3);
      ("dot5", Dmc_gen.Linalg.dot_product 5);
      ("jacobi1d-4x2", (Dmc_gen.Stencil.jacobi_1d ~n:4 ~steps:2).graph);
    ]
  in
  let random =
    List.init cases (fun i ->
        let g =
          if i mod 2 = 0 then
            Dmc_gen.Random_dag.layered rng ~layers:4 ~width:4 ~edge_prob:0.45
          else Dmc_gen.Random_dag.gnp rng ~n:(8 + Rng.int rng 6) ~edge_prob:0.25
        in
        (Printf.sprintf "random%d" i, g))
  in
  fixed @ random

let analyze_case name g s =
  let report = Bounds.analyze g ~s in
  (* The result-typed engines turn state-space blow-up (or any other
     failure) into [Error], which this table renders as "-". *)
  let optimal =
    if Cdag.n_vertices g <= 18 then Result.to_option (Bounds.Engine.rbw_io g ~s)
    else None
  in
  let rb_optimal =
    if Cdag.n_vertices g <= 15 && Dmc_cdag.Validate.is_hong_kung g then
      Result.to_option (Bounds.Engine.rb_io g ~s)
    else None
  in
  let sound =
    (match optimal with
    | Some opt ->
        report.best_lb <= opt && opt <= report.belady_ub
        && (match rb_optimal with Some rb -> rb <= opt | None -> true)
    | None -> report.best_lb <= report.belady_ub)
  in
  {
    name;
    n_vertices = Cdag.n_vertices g;
    s;
    best_lb = report.best_lb;
    optimal;
    belady = report.belady_ub;
    rb_optimal;
    sound;
  }

let soundness_suite ?seed ?cases () =
  List.concat_map
    (fun (name, g) ->
      List.filter_map
        (fun s ->
          let max_indeg =
            Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
          in
          if s <= max_indeg then None else Some (analyze_case name g s))
        [ 2; 3; 5 ])
    (fixtures ?seed ?cases ())

let soundness_table cases =
  let t =
    Table.create
      ~headers:[ "case"; "|V|"; "S"; "best LB"; "optimal"; "Belady UB"; "RB opt"; "sound" ]
  in
  Table.set_align t
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ];
  let opt = function None -> "-" | Some x -> string_of_int x in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.name;
          string_of_int c.n_vertices;
          string_of_int c.s;
          string_of_int c.best_lb;
          opt c.optimal;
          string_of_int c.belady;
          opt c.rb_optimal;
          (if c.sound then "yes" else "NO");
        ])
    cases;
  t

let all_sound cases = List.for_all (fun c -> c.sound) cases

type theorem1_check = {
  name : string;
  s : int;
  io : int;
  h : int;
  partition_valid : bool;
  arithmetic_holds : bool;
}

let theorem1_suite ?(seed = 7) () =
  let rng = Rng.create seed in
  let graphs =
    [
      ("tree16", Dmc_gen.Shapes.reduction_tree 16);
      ("diamond5x5", Dmc_gen.Shapes.diamond ~rows:5 ~cols:5);
      ("fft8", Dmc_gen.Fft.butterfly 3);
      ("jacobi1d-8x4", (Dmc_gen.Stencil.jacobi_1d ~n:8 ~steps:4).graph);
      ("matmul3", Dmc_gen.Linalg.matmul 3);
      ("layered", Dmc_gen.Random_dag.layered rng ~layers:5 ~width:5 ~edge_prob:0.4);
    ]
  in
  List.concat_map
    (fun (name, g) ->
      List.filter_map
        (fun s ->
          let max_indeg =
            Cdag.fold_vertices g (fun acc v -> max acc (Cdag.in_degree g v)) 0
          in
          if s <= max_indeg then None
          else begin
            let moves = Strategy.schedule g ~s in
            let io = Dmc_core.Rbw_game.io_of g ~s moves in
            let color = Dmc_core.Spartition.of_game g ~s moves in
            let h = 1 + Array.fold_left max (-1) color in
            let partition_valid =
              match Dmc_core.Spartition.check g ~s:(2 * s) ~color with
              | Ok _ -> true
              | Error _ -> false
            in
            (* Lemma 1 uses the direction [io >= s*(h-1)]; the other
               direction holds for the uncompacted phase count
               [ceil(io/s)], of which [h] can only be a compaction. *)
            Some
              {
                name;
                s;
                io;
                h;
                partition_valid;
                arithmetic_holds = io >= s * (h - 1) && h <= (io + s - 1) / s;
              }
          end)
        [ 3; 4; 8 ])
    graphs

let theorem1_table checks =
  let t =
    Table.create ~headers:[ "case"; "S"; "I/O"; "h"; "valid 2S-part."; "S*h >= q >= S*(h-1)" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.name;
          string_of_int c.s;
          string_of_int c.io;
          string_of_int c.h;
          (if c.partition_valid then "yes" else "NO");
          (if c.arithmetic_holds then "yes" else "NO");
        ])
    checks;
  t

type sim_check = {
  name : string;
  s : int;
  simulated_io : int;
  game_lb : int;
  holds : bool;
}

let simulator_suite ?(seed = 11) () =
  let rng = Rng.create seed in
  ignore rng;
  let cases =
    [
      ("jacobi1d-16x6", (Dmc_gen.Stencil.jacobi_1d ~n:16 ~steps:6).graph, 6);
      ("jacobi2d-5x3", (Dmc_gen.Stencil.jacobi_2d ~shape:Dmc_gen.Stencil.Star ~n:5 ~steps:3 ()).graph, 8);
      ("tree32", Dmc_gen.Shapes.reduction_tree 32, 4);
      ("matmul4", Dmc_gen.Linalg.matmul 4, 6);
      ("fft8", Dmc_gen.Fft.butterfly 3, 4);
    ]
  in
  List.map
    (fun (name, g, s) ->
      let order = Strategy.default_order g in
      let result =
        Dmc_sim.Exec.run g ~order
          (Dmc_sim.Exec.sequential ~capacities:[| s; 4 * Cdag.n_vertices g |])
      in
      let simulated_io = result.vertical.(0).(0) in
      let report = Bounds.analyze g ~s in
      {
        name;
        s;
        simulated_io;
        game_lb = report.best_lb;
        holds = simulated_io >= report.best_lb;
      })
    cases

type hierarchy_check = {
  name : string;
  s1 : int;
  s2 : int;
  boundary_regs : int;
  boundary_mem : int;
  lb_at_s1 : int;
  lb_at_s2 : int;
  holds : bool;
}

let hierarchy_suite () =
  let cases =
    [
      ("jacobi1d-24x8", (Dmc_gen.Stencil.jacobi_1d ~n:24 ~steps:8).graph, 6, 20);
      ("fft32", Dmc_gen.Fft.butterfly 5, 4, 16);
      ("matmul5", Dmc_gen.Linalg.matmul 5, 8, 32);
      ("tree64", Dmc_gen.Shapes.reduction_tree 64, 3, 12);
      ("cg-3x3x2", (Dmc_gen.Solver.cg ~dims:[ 3; 3 ] ~iters:2).graph, 8, 24);
    ]
  in
  List.map
    (fun (name, g, s1, s2) ->
      let moves = Strategy.hierarchical g ~s1 ~s2 in
      let hier = Strategy.hierarchical_hierarchy ~s1 ~s2 in
      match Dmc_core.Prbw_game.run hier g moves with
      | Error e ->
          failwith
            (Printf.sprintf "hierarchy_suite %s: invalid game at %d: %s" name
               e.Dmc_core.Prbw_game.step e.Dmc_core.Prbw_game.reason)
      | Ok stats ->
          let boundary_regs = Dmc_core.Prbw_game.boundary_traffic stats ~level:2 in
          let boundary_mem = Dmc_core.Prbw_game.boundary_traffic stats ~level:3 in
          let lb_at_s1 = Dmc_core.Wavefront.lower_bound g ~s:s1 in
          let lb_at_s2 = Dmc_core.Wavefront.lower_bound g ~s:s2 in
          {
            name;
            s1;
            s2;
            boundary_regs;
            boundary_mem;
            lb_at_s1;
            lb_at_s2;
            holds =
              boundary_regs >= lb_at_s1 && boundary_mem >= lb_at_s2
              && boundary_regs >= boundary_mem;
          })
    cases

let hierarchy_table checks =
  let t =
    Table.create
      ~headers:
        [ "case"; "S1"; "S2"; "regs<->cache"; "LB(S1)"; "cache<->mem"; "LB(S2)"; "holds" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.name;
          string_of_int c.s1;
          string_of_int c.s2;
          string_of_int c.boundary_regs;
          string_of_int c.lb_at_s1;
          string_of_int c.boundary_mem;
          string_of_int c.lb_at_s2;
          (if c.holds then "yes" else "NO");
        ])
    checks;
  t

type matmul_level_row = {
  n : int;
  s1 : int;
  s2 : int;
  regs_traffic : int;
  regs_bound : float;
  cache_traffic : int;
  cache_bound : float;
}

let matmul_multilevel ?(n = 16) ~configs () =
  let mm = Dmc_gen.Linalg.matmul_indexed n in
  let g = mm.Dmc_gen.Linalg.mm_graph in
  List.map
    (fun (s1, s2) ->
      (* block sides sized so ~3 tiles fit each level *)
      let side cap = max 1 (int_of_float (sqrt (float_of_int cap /. 3.0))) in
      let inner = max 1 (min (side s1) n) in
      let outer = max inner (min (side s2) n) in
      let order = Dmc_gen.Linalg.blocked2_matmul_order mm ~inner ~outer in
      let moves = Strategy.hierarchical ~order g ~s1 ~s2 in
      let hier = Strategy.hierarchical_hierarchy ~s1 ~s2 in
      match Dmc_core.Prbw_game.run hier g moves with
      | Error e ->
          failwith
            (Printf.sprintf "matmul_multilevel: invalid game: %s"
               e.Dmc_core.Prbw_game.reason)
      | Ok stats ->
          {
            n;
            s1;
            s2;
            regs_traffic = Dmc_core.Prbw_game.boundary_traffic stats ~level:2;
            regs_bound = Dmc_core.Analytic.matmul_lb ~n ~s:s1;
            cache_traffic = Dmc_core.Prbw_game.boundary_traffic stats ~level:3;
            cache_bound = Dmc_core.Analytic.matmul_lb ~n ~s:s2;
          })
    configs

let matmul_multilevel_table rows =
  let t =
    Table.create
      ~headers:
        [ "n"; "S1"; "S2"; "regs traffic"; "HK bound(S1)"; "ratio";
          "cache traffic"; "HK bound(S2)"; "ratio" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.s1;
          string_of_int r.s2;
          string_of_int r.regs_traffic;
          Printf.sprintf "%.0f" r.regs_bound;
          Printf.sprintf "%.1fx" (float_of_int r.regs_traffic /. r.regs_bound);
          string_of_int r.cache_traffic;
          Printf.sprintf "%.0f" r.cache_bound;
          Printf.sprintf "%.1fx" (float_of_int r.cache_traffic /. r.cache_bound);
        ])
    rows;
  t

let simulator_table checks =
  let t = Table.create ~headers:[ "case"; "S"; "simulated I/O"; "certified LB"; "LB <= sim" ] in
  List.iter
    (fun (c : sim_check) ->
      Table.add_row t
        [
          c.name;
          string_of_int c.s;
          string_of_int c.simulated_io;
          string_of_int c.game_lb;
          (if c.holds then "yes" else "NO");
        ])
    checks;
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts.  Two experiments live here: "validate" (soundness
   + Theorem 1) and "sim" (simulator cross-check, P-RBW hierarchy,
   multi-level matmul).  Each part pre-renders its table and carries
   the check verdicts as booleans. *)

module J = Dmc_util.Json
module P = Experiment.P

let table_part ~table ~checks () =
  J.Obj
    (("table", Doc.block_to_json (Doc.Table table))
    :: List.map (fun (k, b) -> (k, J.Bool b)) checks)

let validate_parts =
  [
    {
      Experiment.part = "soundness";
      run =
        (fun () ->
          let cases = soundness_suite () in
          table_part ~table:(soundness_table cases)
            ~checks:[ ("sound", all_sound cases) ]
            ());
    };
    {
      Experiment.part = "theorem1";
      run =
        (fun () ->
          let t1 = theorem1_suite () in
          table_part ~table:(theorem1_table t1)
            ~checks:
              [
                ( "ok",
                  List.for_all
                    (fun c -> c.partition_valid && c.arithmetic_holds)
                    t1 );
              ]
            ());
    };
  ]

let validate_doc_of_parts payloads =
  match payloads with
  | [ so; t1 ] ->
      {
        Doc.name = "validate";
        blocks =
          [
            Doc.Section "Validation: lower bounds vs provably optimal games";
            Experiment.block_field so "table";
            Doc.Section "Validation: Theorem 1 (game -> 2S-partition)";
            Experiment.block_field t1 "table";
            Doc.check "every lower bound below the optimum, every strategy above"
              (P.bool so "sound");
            Doc.check
              "every game-derived partition is a valid 2S-partition with S*h >= q >= S*(h-1)"
              (P.bool t1 "ok");
          ];
      }
  | _ -> Experiment.malformed "validate experiment expects 2 part payloads"

let sim_parts =
  [
    {
      Experiment.part = "simulator";
      run =
        (fun () ->
          let checks = simulator_suite () in
          table_part ~table:(simulator_table checks)
            ~checks:[ ("ok", List.for_all (fun (c : sim_check) -> c.holds) checks) ]
            ());
    };
    {
      Experiment.part = "hierarchy";
      run =
        (fun () ->
          let hier = hierarchy_suite () in
          table_part ~table:(hierarchy_table hier)
            ~checks:
              [ ("ok", List.for_all (fun (c : hierarchy_check) -> c.holds) hier) ]
            ());
    };
    {
      Experiment.part = "matmul";
      run =
        (fun () ->
          let mm =
            matmul_multilevel
              ~configs:[ (12, 48); (12, 147); (27, 147); (48, 300) ]
              ()
          in
          table_part ~table:(matmul_multilevel_table mm)
            ~checks:
              [
                ( "dominates",
                  List.for_all
                    (fun r ->
                      float_of_int r.regs_traffic >= r.regs_bound
                      && float_of_int r.cache_traffic >= r.cache_bound)
                    mm );
                ( "within",
                  List.for_all
                    (fun r ->
                      float_of_int r.regs_traffic <= 16.0 *. r.regs_bound
                      && float_of_int r.cache_traffic <= 16.0 *. r.cache_bound)
                    mm );
              ]
            ());
    };
  ]

let sim_doc_of_parts payloads =
  match payloads with
  | [ si; hi; mm ] ->
      {
        Doc.name = "sim";
        blocks =
          [
            Doc.Section
              "Simulator cross-check: LRU hierarchy traffic vs certified bounds";
            Experiment.block_field si "table";
            Doc.Section
              "Three-level P-RBW games: per-boundary traffic vs sequential bounds";
            Experiment.block_field hi "table";
            Doc.Section
              "Multi-level tightness: two-level blocked matmul vs Hong-Kung at each level";
            Experiment.block_field mm "table";
            Doc.check "simulated traffic dominates every certified lower bound"
              (P.bool si "ok");
            Doc.check "every P-RBW boundary dominates its sequential bound"
              (P.bool hi "ok");
            Doc.check "matmul traffic dominates the HK bound at both levels"
              (P.bool mm "dominates");
            Doc.check "matmul traffic within 16x of the HK bound at both levels"
              (P.bool mm "within");
          ];
      }
  | _ -> Experiment.malformed "sim experiment expects 3 part payloads"
