(** Data-movement analysis of multigrid V-cycles — an extension
    experiment applying the paper's machinery beyond its own solver
    set.

    Multigrid does geometrically less work per level, so unlike CG its
    vertical traffic is dominated by the finest grid's smoothing
    sweeps; the per-cycle decomposition bound grows linearly in the
    cycle count exactly as Theorem 8's does in the CG iteration
    count. *)

type row = {
  cycles : int;
  work : int;                (** compute vertices *)
  decomposed_lb : int;       (** per-cycle wavefront sum (Theorems 2+4 pattern) *)
  whole_lb : int;            (** single whole-graph wavefront bound *)
  belady_ub : int;           (** measured valid execution *)
  s : int;
}

val sweep :
  ?dims:int list -> ?levels:int -> ?s:int -> cycle_counts:int list -> unit -> row list
(** Defaults: a 1D grid of 33 points, 3 levels, [s = 6].  For each
    cycle count, build the V-cycle CDAG, slice it per cycle at the
    final fine-grid post-smoothing sweep, and bound each slice by its
    exact maximum min-wavefront (the big cut sits at the restriction
    funnel, where the whole fine grid is pinned while the coarse
    correction is in flight); Theorem 2 sums the per-cycle bounds. *)

val table : row list -> Dmc_util.Table.t

val row_to_json : row -> Dmc_util.Json.t

val row_of_json : Dmc_util.Json.t -> row

val parts : Experiment.part list
(** One part per cycle count. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** The sweep plus the checks: every decomposed bound sits below its
    measured execution, and the decomposed bound grows with the cycle
    count while the whole-graph bound saturates. *)
