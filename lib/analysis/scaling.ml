module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Analytic = Dmc_core.Analytic

type cg_node_point = {
  nodes : int;
  horizontal_per_flop : float;
  network_bound_on : string list;
}

let cg_node_sweep ?(d = 3) ?(n = 1000) ~node_counts () =
  List.map
    (fun nodes ->
      let horizontal_per_flop = Analytic.cg_horizontal_per_flop ~d ~n ~nodes in
      {
        nodes;
        horizontal_per_flop;
        network_bound_on =
          List.filter_map
            (fun (m : Machines.t) ->
              if horizontal_per_flop > m.horizontal_balance then Some m.name
              else None)
            Machines.table1;
      })
    node_counts

let cg_network_bound_at ?(d = 3) ?(n = 1000) ~balance () =
  if balance <= 0.0 then invalid_arg "Scaling.cg_network_bound_at";
  (balance *. 20.0 *. float_of_int n /. 6.0) ** float_of_int d

type cache_point = {
  cache_mwords : float;
  max_dim_paper : float;
  threshold_2d : float;
  threshold_3d : float;
}

let jacobi_cache_sweep ?(balance = Machines.bgq.Machines.vertical_balance)
    ~cache_mwords () =
  List.map
    (fun mw ->
      let s = int_of_float (mw *. 1024.0 *. 1024.0) in
      {
        cache_mwords = mw;
        max_dim_paper = Analytic.jacobi_max_dim ~s ~balance;
        threshold_2d = Analytic.jacobi_balance_threshold ~d:2 ~s;
        threshold_3d = Analytic.jacobi_balance_threshold ~d:3 ~s;
      })
    cache_mwords

let min_balance_table () =
  let t = Table.create ~headers:[ "algorithm"; "min balance (words/FLOP)"; "note" ] in
  Table.add_row t
    [ "CG (any d)"; Printf.sprintf "%.3f" (Analytic.cg_vertical_per_flop ());
      "node-count independent" ];
  List.iter
    (fun m ->
      Table.add_row t
        [
          Printf.sprintf "GMRES m=%d" m;
          Printf.sprintf "%.4f" (Analytic.gmres_vertical_per_flop ~m);
          "drops as Krylov work grows";
        ])
    [ 8; 32; 128 ];
  let s = Machines.cache_words Machines.bgq in
  List.iter
    (fun d ->
      Table.add_row t
        [
          Printf.sprintf "Jacobi %dD" d;
          Printf.sprintf "%.2e" (Analytic.jacobi_balance_threshold ~d ~s);
          "at the BG/Q 4 MWord cache";
        ])
    [ 2; 3; 5 ];
  t

let balance_trend_table () =
  let t =
    Table.create
      ~headers:
        [ "year"; "system"; "v-balance"; "h-balance"; "CG verdict"; "GMRES m=32" ]
  in
  let cg = Analytic.cg_vertical_per_flop () in
  let gm = Analytic.gmres_vertical_per_flop ~m:32 in
  List.iter
    (fun (year, (m : Machines.t)) ->
      let verdict lb =
        Dmc_machine.Balance.verdict_to_string
          (Dmc_machine.Balance.classify_lower ~lb_per_flop:lb
             ~balance:m.vertical_balance)
      in
      Table.add_row t
        [
          string_of_int year;
          m.name;
          Printf.sprintf "%.4f" m.vertical_balance;
          Printf.sprintf "%.6f" m.horizontal_balance;
          verdict cg;
          verdict gm;
        ])
    (List.sort compare Machines.extended);
  t

let tables () =
  let t1 =
    let t = Table.create ~headers:[ "nodes"; "UB_horiz/FLOP"; "network-bound on" ] in
    List.iter
      (fun p ->
        Table.add_row t
          [
            Table.fmt_int p.nodes;
            Printf.sprintf "%.2e" p.horizontal_per_flop;
            (if p.network_bound_on = [] then "-" else String.concat ", " p.network_bound_on);
          ])
      (cg_node_sweep
         ~node_counts:[ 1024; 16384; 262144; 4194304; 67108864 ]
         ());
    t
  in
  let t2 =
    let t =
      Table.create
        ~headers:[ "cache (MWords)"; "paper max dim"; "2D floor"; "3D floor" ]
    in
    List.iter
      (fun p ->
        Table.add_row t
          [
            Printf.sprintf "%.2f" p.cache_mwords;
            Printf.sprintf "%.2f" p.max_dim_paper;
            Printf.sprintf "%.2e" p.threshold_2d;
            Printf.sprintf "%.2e" p.threshold_3d;
          ])
      (jacobi_cache_sweep ~cache_mwords:[ 0.125; 0.5; 2.0; 4.0; 16.0; 64.0 ] ());
    t
  in
  [ t1; t2; min_balance_table () ]

(* ------------------------------------------------------------------ *)
(* Experiment parts: the three what-if sweeps and the balance trend. *)

module J = Dmc_util.Json
module P = Experiment.P

let sweeps_part () =
  J.Obj
    [
      ( "tables",
        Experiment.blocks_to_json
          (List.map (fun t -> Doc.Table t) (tables ())) );
      ( "crossover",
        J.Float
          (cg_network_bound_at
             ~balance:Machines.bgq.Machines.horizontal_balance ()) );
    ]

let trend_part () =
  J.Obj [ ("table", Doc.block_to_json (Doc.Table (balance_trend_table ()))) ]

let parts =
  [
    { Experiment.part = "sweeps"; run = sweeps_part };
    { Experiment.part = "trend"; run = trend_part };
  ]

let doc_of_parts payloads =
  match payloads with
  | [ sw; tr ] ->
      let crossover = P.float sw "crossover" in
      let t1, t2, t3 =
        match Experiment.blocks_field sw "tables" with
        | [ a; b; c ] -> (a, b, c)
        | _ -> Experiment.malformed "scaling sweeps payload expects 3 tables"
      in
      {
        Doc.name = "scaling";
        blocks =
          [
            Doc.Section "Architectural what-ifs: when does the bottleneck move?";
            Doc.Text "CG horizontal cost vs node count (d=3, n=1000):\n\n";
            t1;
            Doc.Text
              (Printf.sprintf
                 "\n\
                 \  CG stays memory-bound at any scale; the network only joins in around\n\
                 \  N = %.2e nodes (BG/Q balance).\n\n"
                 crossover);
            Doc.Text "Jacobi dimension threshold vs cache size (balance 0.052):\n\n";
            t2;
            Doc.Text "\nMinimum machine balance each algorithm needs:\n\n";
            t3;
            Doc.Text
              "\nBalance trend beyond Table 1 (post-2014 rows are estimates from public specs):\n\n";
            Experiment.block_field tr "table";
            Doc.check "CG network crossover is beyond any built machine"
              (crossover > 1.0e6);
          ];
      }
  | _ -> Experiment.malformed "scaling experiment expects 2 part payloads"
