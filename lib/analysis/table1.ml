module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines

let table () =
  let t =
    Table.create
      ~headers:
        [
          "Machine";
          "Nnodes";
          "Mem (GB)";
          "L2/L3 cache (MB)";
          "Vertical balance (words/FLOP)";
          "Horiz. balance (words/FLOP)";
        ]
  in
  Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun (m : Machines.t) ->
      Table.add_row t
        [
          m.name;
          string_of_int m.nodes;
          Printf.sprintf "%.0f" m.memory_gb_per_node;
          Printf.sprintf "%.0f" m.cache_mb;
          Printf.sprintf "%.4f" m.vertical_balance;
          Printf.sprintf "%.4f" m.horizontal_balance;
        ])
    Machines.table1;
  t

let render () = Table.render (table ())

(* ------------------------------------------------------------------ *)
(* Experiment parts: one row per machine. *)

module J = Dmc_util.Json
module P = Experiment.P

let headers =
  [
    "Machine";
    "Nnodes";
    "Mem (GB)";
    "L2/L3 cache (MB)";
    "Vertical balance (words/FLOP)";
    "Horiz. balance (words/FLOP)";
  ]

let row_cells (m : Machines.t) =
  [
    m.name;
    string_of_int m.nodes;
    Printf.sprintf "%.0f" m.memory_gb_per_node;
    Printf.sprintf "%.0f" m.cache_mb;
    Printf.sprintf "%.4f" m.vertical_balance;
    Printf.sprintf "%.4f" m.horizontal_balance;
  ]

let parts =
  List.map
    (fun (m : Machines.t) ->
      {
        Experiment.part = m.name;
        run = (fun () -> J.Obj [ ("cells", P.of_strings (row_cells m)) ]);
      })
    Machines.table1

let doc_of_parts payloads =
  let t = Table.create ~headers in
  Table.set_align t
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter (fun p -> Table.add_row t (P.strings p "cells")) payloads;
  {
    Doc.name = "table1";
    blocks = [ Doc.Section "Table 1: machine specifications"; Doc.Table t ];
  }
