(* E-SYMSCALE: symbolic recombination curves far past materialization.

   Three parts:
   - "curves": closed-form lower bounds for jacobi1d and fft from
     materializable sizes up to n = 10^9 / 2^30, priced by bounding one
     representative per isomorphism class (Symbolic_bounds);
   - "crosscheck": at small n, the symbolic value must equal the
     numeric reference — the same partition over the materialized
     graph, every piece bounded by the same engine — exactly;
   - "stream": the windowed implicit wavefront sweep at a mid scale
     the frozen-CSR path could also reach, as a liveness check on the
     streaming consumers the implicit layer feeds.

   Everything here is deterministic (fixed specs, fixed tiles, the
   engine seeds its own rng per call), so the document is byte-stable
   across runs, worker shardings and checkpoint reloads. *)

module J = Dmc_util.Json
module P = Experiment.P
module Table = Dmc_util.Table
module Sb = Dmc_core.Symbolic_bounds
module Streaming = Dmc_core.Streaming
module Expr = Dmc_symbolic.Expr

let s_cap = 1024

(* jacobi1d ladder: decades to a billion grid points (x 9 time slabs
   of vertices each); fft ladder: 2^k rows up to 2^30 *)
let jacobi_sizes = [ 1_000; 100_000; 10_000_000; 1_000_000_000 ]
let fft_ks = [ 10; 16; 22; 30 ]

let bound_row ~spec =
  match Sb.bound ~spec ~s:s_cap () with
  | Error m -> Experiment.malformed "symscale: %s: %s" spec m
  | Ok b ->
      J.Obj
        [
          ("spec", J.String spec);
          ("n", J.Int b.Sb.size);
          ("vertices", J.Int b.Sb.n_vertices);
          ("tile", J.Int b.Sb.tile);
          ("classes", J.Int (List.length b.Sb.classes));
          ("value", J.Int b.Sb.value);
          ("formula", J.String (Expr.to_string b.Sb.formula));
        ]

let curves_part () =
  let jac =
    List.map
      (fun n -> bound_row ~spec:(Printf.sprintf "jacobi1d:%d" n))
      jacobi_sizes
  in
  let fft = List.map (fun k -> bound_row ~spec:(Printf.sprintf "fft:%d" k)) fft_ks in
  J.Obj [ ("jacobi1d", J.List jac); ("fft", J.List fft) ]

(* small enough to materialize, spread across every supported family *)
let crosscheck_specs =
  [
    ("chain:300", 4, Some 32);
    ("tree:256", 4, Some 16);
    ("diamond:24,24", 4, Some 8);
    ("fft:8", 4, Some 3);
    ("jacobi1d:60,3", 4, Some 16);
    ("jacobi2d:12,2", 4, Some 5);
    ("jacobi3d:6,2", 4, Some 3);
  ]

let crosscheck_part () =
  let rows =
    List.map
      (fun (spec, s, tile) ->
        let sym =
          match Sb.bound ?tile ~spec ~s () with
          | Ok b -> b.Sb.value
          | Error m -> Experiment.malformed "symscale: %s: %s" spec m
        in
        let num =
          match Sb.numeric_reference ?tile ~spec ~s () with
          | Ok v -> v
          | Error m -> Experiment.malformed "symscale: %s (numeric): %s" spec m
        in
        J.Obj
          [
            ("spec", J.String spec);
            ("s", J.Int s);
            ("symbolic", J.Int sym);
            ("numeric", J.Int num);
          ])
      crosscheck_specs
  in
  J.Obj [ ("rows", J.List rows) ]

let stream_spec = "jacobi1d:20000,4"
let stream_s = 256

let stream_part () =
  let imp =
    match Dmc_gen.Workload.parse_implicit stream_spec with
    | Ok imp -> imp
    | Error m -> Experiment.malformed "symscale: %s: %s" stream_spec m
  in
  let r = Streaming.wavefront_sum imp ~s:stream_s in
  J.Obj
    [
      ("spec", J.String stream_spec);
      ("total", J.Int r.Streaming.total);
      ("windows", J.Int r.Streaming.n_windows);
      ("degraded", J.Int r.Streaming.degraded);
    ]

let parts =
  [
    { Experiment.part = "curves"; run = curves_part };
    { Experiment.part = "crosscheck"; run = crosscheck_part };
    { Experiment.part = "stream"; run = stream_part };
  ]

let curve_table payload key =
  let t =
    Table.create
      ~headers:[ "n"; "vertices"; "tile"; "classes"; "LB(S=1024)"; "closed form" ]
  in
  List.iter
    (fun row ->
      Table.add_row t
        [
          Table.fmt_int (P.int row "n");
          Table.fmt_int (P.int row "vertices");
          string_of_int (P.int row "tile");
          string_of_int (P.int row "classes");
          Table.fmt_int (P.int row "value");
          P.str row "formula";
        ])
    (P.objs payload key);
  t

let doc_of_parts payloads =
  match payloads with
  | [ cv; cc; st ] ->
      let cross_rows = P.objs cc "rows" in
      let cross_table =
        let t = Table.create ~headers:[ "spec"; "S"; "symbolic"; "numeric" ] in
        List.iter
          (fun row ->
            Table.add_row t
              [
                P.str row "spec";
                string_of_int (P.int row "s");
                Table.fmt_int (P.int row "symbolic");
                Table.fmt_int (P.int row "numeric");
              ])
          cross_rows;
        t
      in
      let all_match =
        List.for_all
          (fun row -> P.int row "symbolic" = P.int row "numeric")
          cross_rows
      in
      let biggest key =
        match List.rev (P.objs cv key) with
        | last :: _ -> last
        | [] -> Experiment.malformed "symscale: empty %s curve" key
      in
      let jac_top = biggest "jacobi1d" and fft_top = biggest "fft" in
      {
        Doc.name = "symscale";
        blocks =
          [
            Doc.Section "Symbolic recombination: bounds past materialization";
            Doc.Text
              "Each row prices the whole instance as sum(count_c * engine(rep_c))\n\
               over tile isomorphism classes; only the representatives are ever\n\
               materialized, so cost is independent of n.\n\n\
               jacobi1d (T=8), S=1024:\n\n";
            Doc.Table (curve_table cv "jacobi1d");
            Doc.Text "\nfft (n = 2^k rows), S=1024:\n\n";
            Doc.Table (curve_table cv "fft");
            Doc.Text
              "\nCross-validation against the materialized engine (same partition,\n\
               same engine, every piece) at sizes both paths can reach:\n\n";
            Doc.Table cross_table;
            Doc.Text "\n";
            Doc.check "symbolic value = numeric reference on every overlap"
              all_match;
            Doc.check
              ~measured:(float_of_int (P.int jac_top "value"))
              "billion-point jacobi1d bound is positive"
              (P.int jac_top "value" > 0);
            Doc.check
              ~measured:(float_of_int (P.int fft_top "value"))
              "2^30-row fft bound is positive"
              (P.int fft_top "value" > 0);
            Doc.Text "\nStreaming (windowed implicit wavefront) at mid scale:\n\n";
            Doc.Facts
              [
                [
                  Doc.fact "spec" (P.str st "spec");
                  Doc.fact "windows" (string_of_int (P.int st "windows"));
                  Doc.fact "LB" (Table.fmt_int (P.int st "total"));
                ];
              ];
            Doc.check "streamed windows all bounded (none degraded)"
              (P.int st "degraded" = 0);
          ];
      }
  | _ -> Experiment.malformed "symscale experiment expects 3 part payloads"
