(** The experiment registry (see the experiment index in DESIGN.md).

    Each experiment is an {!Experiment.t}: named serializable parts
    plus a pure assembler from part payloads to a {!Doc.t}.  The CLI
    renders the document as text (byte-identical to the historical
    print-based output), JSON, or Markdown, and can shard the parts
    across the worker pool or reload them from a checkpoint. *)

val experiments : Experiment.t list
(** All experiments, in the canonical run order. *)

val find : string -> Experiment.t option

val run_and_print : Experiment.t -> bool
(** Run every part in-process, print the text rendering to stdout, and
    return whether every check passed. *)

val names : (string * (unit -> bool)) list
(** Print-and-check thunks in registry order, for the bench harness. *)

val all : unit -> bool
(** Run every experiment in order; [true] iff all passed. *)
