(** One experiment part as a pure, serializable job — the experiment
    counterpart of {!Dmc_core.Engine_job}.

    [dmc experiment --jobs N] ships one of these per part to a pool
    worker: the experiment and part travel by name and the computation
    is reconstructed on the other side through the
    {!Report.experiments} registry, so a job is fully described by
    data and can be logged, checkpointed, or replayed verbatim.  The
    resulting payload is the part's JSON, exactly what the v2
    experiment checkpoint stores. *)

type t = { exp : string; part : string }

val to_json : t -> Dmc_util.Json.t

val of_json : Dmc_util.Json.t -> (t, string) result

val run : t -> (Dmc_util.Json.t, string) result
(** Resolve the part through the registry and run it; [Error] names an
    unknown experiment or part (payloads and code from different
    versions — the checkpoint layer rejects that up front). *)
