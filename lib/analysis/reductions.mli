(** Where does CG's memory wall come from?  The reductions.

    CG and the Chebyshev iteration do the same SpMV and vector updates
    on the same grid; CG additionally computes two global dot products
    per iteration, whose scalar results pin the [2 n^d] operand vectors
    live (Theorem 8's wavefront).  Chebyshev replaces those scalars
    with precomputed coefficients, so its wavefronts stay
    stencil-local.  This experiment measures both on identical grids —
    the communication-avoiding-Krylov argument, certified by min-cuts
    on real CDAGs. *)

type row = {
  grid_points : int;
  iters : int;
  s : int;
  cg_wavefront : int;        (** [|Wmin(υ_x)|] of CG's last iteration *)
  cheb_wavefront : int;      (** max min-wavefront over Chebyshev's last iteration *)
  cg_lb : int;               (** per-iteration decomposed bound, CG *)
  cheb_lb : int;             (** same pipeline on Chebyshev *)
  cg_ub : int;               (** measured Belady execution *)
  cheb_ub : int;
}

val compare : ?dims:int list -> ?iters:int -> ?s:int -> unit -> row
(** Defaults: a 2D 5x5 grid, 3 iterations, [s = 12]. *)

val row_to_json : row -> Dmc_util.Json.t

val row_of_json : Dmc_util.Json.t -> row

val parts : Experiment.part list

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** The comparison plus the checks: CG's wavefront exceeds [2 n^d]
    while Chebyshev's stays below [n^d]; both decomposed bounds sit
    below their measured executions; and Chebyshev's bound is at most
    half of CG's. *)
