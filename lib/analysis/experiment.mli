(** The experiment model behind [dmc experiment].

    An experiment is a list of named {e parts} — independent,
    serializable units of computation, each returning a JSON payload —
    plus a pure function assembling those payloads into a {!Doc.t}.
    The driver can run parts sequentially, shard them across the
    supervised worker pool (payloads cross the process boundary as
    JSON), or reload them from a checkpoint; the document, and hence
    every renderer's output, is byte-identical in all three cases. *)

type part = {
  part : string;               (** unique within the experiment *)
  run : unit -> Dmc_util.Json.t;  (** the (possibly expensive) computation *)
}

type t = {
  name : string;
  parts : part list;
  doc_of_parts : Dmc_util.Json.t list -> Doc.t;
      (** payloads arrive in [parts] order; must be cheap and pure *)
}

val doc : t -> Doc.t
(** Run every part in-process, in order, and assemble the document. *)

val part_names : t -> string list

val find_part : t -> string -> part option

exception Malformed of string
(** Raised by the payload accessors below on a shape mismatch — only
    possible when payloads and code are from different versions, which
    the checkpoint layer rejects up front. *)

val malformed : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Malformed} with a formatted message. *)

(** Field accessors for part payloads. *)
module P : sig
  val field : Dmc_util.Json.t -> string -> Dmc_util.Json.t
  val int : Dmc_util.Json.t -> string -> int
  val float : Dmc_util.Json.t -> string -> float
  val str : Dmc_util.Json.t -> string -> string
  val bool : Dmc_util.Json.t -> string -> bool
  val list : Dmc_util.Json.t -> string -> Dmc_util.Json.t list
  val objs : Dmc_util.Json.t -> string -> Dmc_util.Json.t list
  val int_opt : Dmc_util.Json.t -> string -> int option
  val of_int_opt : int option -> Dmc_util.Json.t
  val strings : Dmc_util.Json.t -> string -> string list
  val of_strings : string list -> Dmc_util.Json.t
end

val verdict_to_json : Dmc_machine.Balance.verdict -> Dmc_util.Json.t

val verdict_of_json : Dmc_util.Json.t -> Dmc_machine.Balance.verdict

val blocks_to_json : Doc.block list -> Dmc_util.Json.t
(** Parts that pre-render report fragments (tables, prose) store them
    as a list of {!Doc.block}s in their payload. *)

val blocks_of_json : Dmc_util.Json.t -> Doc.block list

val blocks_field : Dmc_util.Json.t -> string -> Doc.block list

val block_field : Dmc_util.Json.t -> string -> Doc.block
(** A payload field holding exactly one pre-rendered block. *)
