(** The motivating composite example of Section 3:

    {v  A = p q^T;  B = r s^T;  C = A B;  sum = Σ C_ij  v}

    Summing the per-step lower bounds (outer products, the matrix
    multiplication's [n^3/(2 sqrt 2S)], the final reduction) wildly
    overstates the data movement of the whole: with [S = 4n + 4] words
    the composite runs in [4n + 1] I/Os when recomputation is allowed.
    This experiment regenerates that separation, and also shows what
    the RBW machinery certifies on the real (no-recomputation) CDAG. *)

type row = {
  n : int;
  s : int;                       (** [4n + 4] *)
  matmul_step_lb : float;        (** [n^3 / (2 sqrt(2S))] *)
  naive_sum_lb : float;
      (** per-step bounds added as if that were sound:
          [2(2n + n^2) + matmul + (n^2 + 1)] *)
  composite_upper_rb : float;    (** the paper's [4n + 1] *)
  separation : float;            (** [naive_sum_lb / composite_upper_rb] *)
  rbw_measured_ub : int option;
      (** Belady I/O on the actual composite CDAG (small [n] only) *)
  rbw_lb : int option;           (** certified wavefront bound on it *)
}

val row_for : ?measure_limit:int -> int -> row
(** One sweep row; CDAGs are measured when [n <= measure_limit]
    (default 8). *)

val sweep : ?ns:int list -> ?measure_limit:int -> unit -> row list
(** Defaults: [ns = [4; 8; 16; 32; 64]], CDAGs measured when
    [n <= measure_limit] (default 8). *)

val table_of_rows : row list -> Dmc_util.Table.t

val table : ?ns:int list -> ?measure_limit:int -> unit -> Dmc_util.Table.t

val row_to_json : row -> Dmc_util.Json.t

val row_of_json : Dmc_util.Json.t -> row

val parts : Experiment.part list
(** One part per default sweep size. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
