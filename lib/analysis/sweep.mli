(** Parameter-grid sweeps over the workload registry.

    A sweep is the paper's experimental shape as data: workload
    templates × sizes × fast-memory capacities × processor counts ×
    engines × seeds, expanded into a deterministic row list where each
    row is one governed bound computation ({!Dmc_core.Engine_job}).  The [dmc
    sweep] driver shards these rows across a host fleet; this module
    owns everything that must {e not} depend on the fleet — the grid
    algebra, the expansion order, the checkpoint format and the merged
    report — so the same grid produces byte-identical reports whatever
    ran it.

    Templates are {!Dmc_gen.Workload} specs with optional [{n}] and
    [{seed}] placeholders: ["jacobi1d:{n},4"] expands over [--sizes],
    ["layered:{seed},5,30"] over [--seeds], a plain ["fft:6"] over
    neither.  Placeholder axes are validated both ways — a template
    using [{n}] without sizes is an error, and so are sizes no
    template consumes (a typo'd axis silently sweeping nothing would
    invalidate whatever cited the report). *)

type row = {
  workload : string;  (** concrete registry spec, placeholders substituted *)
  s : int;
  p : int;  (** processor count; 1 unless a p axis was given *)
  engine : string;
      (** a {!Dmc_core.Bounds.governed_engines} or
          {!Dmc_core.Mp_bounds.engines} name *)
}

type t

val make :
  specs:string list ->
  ?sizes:int list ->
  ?seeds:int list ->
  ss:int list ->
  ?ps:int list ->
  ?engines:string list ->
  ?timeout:float ->
  ?node_budget:int ->
  unit ->
  (t, string) result
(** Validate and expand a grid.  [engines] defaults to every governed
    engine; [ps] defaults to [[1]].  Errors: empty [specs]/[ss],
    non-positive [ss] or [ps], unknown engine names, placeholder/axis
    mismatches in either direction, a non-trivial [ps] with no
    p-sensitive engine selected (the axis would silently duplicate
    rows), and any concrete spec that fails registry
    name/arity/integer checks. *)

val rows : t -> row list
(** Every row, in the canonical order: template, then size, then seed,
    then [s], then [p], then engine.  This order {e is} the submission order and
    hence the committed order — the determinism contract starts here. *)

val timeout : t -> float option
val node_budget : t -> int option

val job : t -> row -> (Dmc_core.Engine_job.t, string) result
(** The serializable bound computation for one row.  Graphs are built
    once per concrete workload spec and memoized inside [t]. *)

val degraded :
  t -> row -> failure:Dmc_util.Budget.failure -> (Dmc_util.Json.t, string) result
(** The coordinator-side terminal payload for a row whose worker was
    lost for job-attributed reasons (host-attributed failures are
    re-sharded by the pool instead): {!Dmc_core.Bounds.degraded_row}
    (or {!Dmc_core.Mp_bounds.degraded_row} for the multi-processor
    engines) with zero elapsed, serialized like a worker row.  The run never
    loses a row to a lost worker — it degrades it. *)

val parse_int_list : string -> (int list, string) result
(** Comma-separated integers with inclusive ranges:
    ["8,12,16..19"] is [[8; 12; 16; 17; 18; 19]]. *)

val signature : t -> Dmc_util.Json.t
(** Canonical JSON of the grid parameters (not the expansion).  Two
    grids with equal signatures expand to equal row lists; the
    checkpoint embeds it so a resume against a different grid is
    refused instead of silently mis-aligning committed rows. *)

val checkpoint : t -> committed:Dmc_util.Json.t list -> Dmc_util.Json.t
(** The atomic-resume snapshot: grid signature plus the committed row
    payloads in commit (= submission) order. *)

val restore : t -> Dmc_util.Json.t -> (Dmc_util.Json.t list, string) result
(** Validate a {!checkpoint} against this grid and return the
    committed payload prefix.  [Error] on a foreign kind/version, a
    signature mismatch, or more payloads than the grid has rows. *)

type host_stat = {
  h_name : string;
  h_remote : bool;  (** command transport (vs. the local fork backend) *)
  h_verdict : string;  (** final health verdict, e.g. ["alive"] *)
  h_dispatched : int;
  h_completed : int;
  h_failures : int;
  h_resharded : int;
  h_quarantines : int;
  h_quarantine_log : (float * float) list;
      (** [(entered, until)] absolute times, newest first; [until] is
          [infinity] for a poisoning *)
}
(** One host's run ledger, as neutral data: the [dmc sweep] driver
    converts its {!Dmc_runtime.Host.t} records into these after the
    run (this library never sees the runtime). *)

val host_health_doc : run_started:float -> host_stat list -> Doc.block list
(** The opt-in ([dmc sweep --host-health]) fleet timeline: a section
    with per-host dispatch/completion/failure/reshard counts and the
    quarantine intervals relative to [run_started] ([+12.3s..+14.3s],
    [inf] for a poisoning).  Everything here is {e run}-dependent —
    wall-clock intervals, host placement — which is exactly why it
    rides behind a flag: the flag-less report keeps the byte-identity
    contract {!doc} documents. *)

val doc : t -> results:(Dmc_util.Json.t option) list -> Doc.t
(** The merged report: one payload per row in row order ([None] =
    the row never committed — cancelled run), rendered as a status
    table plus per-(workload, s, p) best-bound sandwich checks, one
    per bound family present (sequential I/O, mp communication, mp
    makespan, pc I/O — distinct quantities never sandwich each
    other).  Only
    value-deterministic fields appear (no elapsed times, no host
    names): the report is byte-identical for any [--jobs], any host
    fleet and any transient-failure schedule. *)
