module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic
module Cdag = Dmc_cdag.Cdag

type row = {
  machine : Machines.t;
  vertical_per_flop : float;
  vertical_verdict : Balance.verdict;
  horizontal_per_flop : float;
  horizontal_verdict : Balance.verdict;
}

let analyze ?(d = 3) ?(n = 1000) () =
  List.map
    (fun (m : Machines.t) ->
      let vertical_per_flop = Analytic.cg_vertical_per_flop () in
      let horizontal_per_flop =
        Analytic.cg_horizontal_per_flop ~d ~n ~nodes:m.nodes
      in
      {
        machine = m;
        vertical_per_flop;
        vertical_verdict =
          Balance.classify_lower ~lb_per_flop:vertical_per_flop
            ~balance:m.vertical_balance;
        horizontal_per_flop;
        horizontal_verdict =
          Balance.classify_upper ~ub_per_flop:horizontal_per_flop
            ~balance:m.horizontal_balance;
      })
    Machines.table1

let table ?d ?n () =
  let t =
    Table.create
      ~headers:
        [
          "Machine";
          "LB_vert/FLOP";
          "balance_vert";
          "vertical verdict";
          "UB_horiz/FLOP";
          "balance_horiz";
          "horizontal verdict";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.machine.Machines.name;
          Printf.sprintf "%.3f" r.vertical_per_flop;
          Printf.sprintf "%.4f" r.machine.Machines.vertical_balance;
          Balance.verdict_to_string r.vertical_verdict;
          Printf.sprintf "%.2e" r.horizontal_per_flop;
          Printf.sprintf "%.4f" r.machine.Machines.horizontal_balance;
          Balance.verdict_to_string r.horizontal_verdict;
        ])
    (analyze ?d ?n ());
  t

type structure_check = {
  grid_points : int;
  iters : int;
  a_wavefront : int;
  g_wavefront : int;
  decomposed_lb : int;
  belady_ub : int;
  s : int;
}

(* Slice the CG CDAG so that piece [t] holds the direction vector
   carried into iteration [t] together with iteration [t]'s SpMV, dot
   products, scalar [a] and vector updates — the shape in which both
   the p-paths and the v-paths to υ_x survive, giving the 2 n^d
   wavefront inside a purely disjoint (Theorem 2) decomposition. *)
let slices (cg : Dmc_gen.Solver.cg) =
  let iters = Array.length cg.iterations in
  let bound t =
    let r = cg.iterations.(t).r_next in
    r.(Array.length r - 1)
  in
  fun v ->
    let rec find t = if t >= iters then iters - 1 else if v <= bound t then t else find (t + 1) in
    find 0

let structure ?(dims = [ 4; 4; 4 ]) ?(iters = 2) ?(s = 16) () =
  let cg = Dmc_gen.Solver.cg ~dims ~iters in
  let g = cg.graph in
  let slice_of = slices cg in
  let parts =
    Dmc_core.Decompose.iteration_slices g ~slice_of ~n_slices:iters
  in
  let pieces =
    Array.mapi
      (fun t part -> (part, [ cg.iterations.(t).a_scalar ]))
      parts
  in
  let decomposed_lb = Dmc_core.Decompose.wavefront_sum g ~pieces ~s in
  let last = cg.iterations.(iters - 1) in
  {
    grid_points = Dmc_gen.Grid.size cg.grid;
    iters;
    a_wavefront = Dmc_core.Wavefront.min_wavefront g last.a_scalar;
    g_wavefront = Dmc_core.Wavefront.min_wavefront g last.g_scalar;
    decomposed_lb;
    belady_ub = Dmc_core.Strategy.io g ~s;
    s;
  }

(* ------------------------------------------------------------------ *)
(* Experiment parts: the machine-balance table, the Theorem-8
   machinery on a concrete CDAG, and the execution-time model. *)

module J = Dmc_util.Json
module P = Experiment.P

let balance_part () =
  let rows = analyze () in
  J.Obj
    [
      ("table", Doc.block_to_json (Doc.Table (table ())));
      ( "vertical_ok",
        J.Bool
          (List.for_all (fun r -> r.vertical_verdict = Balance.Bandwidth_bound) rows)
      );
      ( "horizontal_ok",
        J.Bool
          (List.for_all
             (fun r -> r.horizontal_verdict = Balance.Not_bandwidth_bound)
             rows) );
    ]

let structure_to_json (c : structure_check) =
  J.Obj
    [
      ("grid_points", J.Int c.grid_points);
      ("iters", J.Int c.iters);
      ("a_wavefront", J.Int c.a_wavefront);
      ("g_wavefront", J.Int c.g_wavefront);
      ("decomposed_lb", J.Int c.decomposed_lb);
      ("belady_ub", J.Int c.belady_ub);
      ("s", J.Int c.s);
    ]

let structure_of_json p =
  {
    grid_points = P.int p "grid_points";
    iters = P.int p "iters";
    a_wavefront = P.int p "a_wavefront";
    g_wavefront = P.int p "g_wavefront";
    decomposed_lb = P.int p "decomposed_lb";
    belady_ub = P.int p "belady_ub";
    s = P.int p "s";
  }

let time_part () =
  let time_ok =
    List.for_all
      (fun (m : Machines.t) ->
        let p = Time_model.cg ~machine:m ~flops_per_core:8.0e9 ~n:1000 ~steps:100 in
        p.Time_model.dominant = `Vertical && p.Time_model.efficiency_cap < 0.5)
      Machines.table1
  in
  J.Obj
    [
      ( "table",
        Doc.block_to_json
          (Doc.Table (Time_model.table ~flops_per_core:8.0e9 ~n:1000 ~steps:100))
      );
      ("time_ok", J.Bool time_ok);
    ]

let parts =
  [
    { Experiment.part = "balance"; run = balance_part };
    {
      Experiment.part = "structure";
      run = (fun () -> structure_to_json (structure ()));
    };
    { Experiment.part = "time-model"; run = time_part };
  ]

let doc_of_parts payloads =
  match payloads with
  | [ balance; structure; time ] ->
      let s = structure_of_json structure in
      let block p = Experiment.block_field p "table" in
      {
        Doc.name = "cg";
        blocks =
          [
            Doc.Section "CG (Sec 5.2): machine-balance analysis (d=3, n=1000)";
            block balance;
            Doc.Section
              "CG: Theorem-8 machinery on a concrete CDAG (4^3 grid, 2 iterations)";
            Doc.Text
              (Printf.sprintf
                 "  grid points n^d = %d, iterations = %d, S = %d\n\
                 \  measured wavefront at a-scalar = %d (paper: >= 2 n^d = %d)\n\
                 \  measured wavefront at g-scalar = %d (paper: >= n^d = %d)\n\
                 \  decomposed lower bound = %d, Belady upper bound = %d\n"
                 s.grid_points s.iters s.s s.a_wavefront (2 * s.grid_points)
                 s.g_wavefront s.grid_points s.decomposed_lb s.belady_ub);
            Doc.Section
              "CG: execution-time model (Eqs 4-6) at 8 GFLOP/s per core, n = 1000, T = 100";
            block time;
            Doc.check "CG bandwidth-bound vertically on every machine (LB/FLOP = 0.3)"
              (P.bool balance "vertical_ok");
            Doc.check "time model: memory dominates and caps efficiency below 50%"
              (P.bool time "time_ok");
            Doc.check "CG not bound by the interconnect on any machine"
              (P.bool balance "horizontal_ok");
            Doc.check "wavefront at a-scalar reaches 2 n^d"
              (s.a_wavefront >= 2 * s.grid_points);
            Doc.check "wavefront at g-scalar reaches n^d"
              (s.g_wavefront >= s.grid_points);
            Doc.check "decomposed LB <= measured execution"
              (s.decomposed_lb <= s.belady_ub);
          ];
      }
  | _ -> Experiment.malformed "cg experiment expects 3 part payloads"
