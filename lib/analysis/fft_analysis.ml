module Table = Dmc_util.Table
module Fft = Dmc_gen.Fft

type row = {
  k : int;
  s : int;
  group_bits : int;
  analytic_lb : float;
  blocked_ub : int;
  natural_ub : int;
  ratio : float;
}

let sweep ~configs =
  List.map
    (fun (k, group_bits, s) ->
      let g = Fft.butterfly k in
      let blocked_ub =
        Dmc_core.Strategy.io ~order:(Fft.blocked_order ~k ~group_bits) g ~s
      in
      let natural_ub = Dmc_core.Strategy.io g ~s in
      let analytic_lb = Dmc_core.Analytic.fft_lb ~n:(1 lsl k) ~s in
      {
        k;
        s;
        group_bits;
        analytic_lb;
        blocked_ub;
        natural_ub;
        ratio = float_of_int blocked_ub /. analytic_lb;
      })
    configs

let table rows =
  let t =
    Table.create
      ~headers:[ "n"; "S"; "pass ranks"; "analytic LB"; "blocked UB"; "vs LB"; "natural UB"; "vs LB" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int (1 lsl r.k);
          string_of_int r.s;
          string_of_int r.group_bits;
          Printf.sprintf "%.0f" r.analytic_lb;
          string_of_int r.blocked_ub;
          Printf.sprintf "%.1fx" r.ratio;
          string_of_int r.natural_ub;
          Printf.sprintf "%.1fx" (float_of_int r.natural_ub /. r.analytic_lb);
        ])
    rows;
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts: one per sweep config, plus the structural facts. *)

module J = Dmc_util.Json
module P = Experiment.P

let default_configs =
  [ (6, 3, 18); (8, 3, 18); (8, 4, 34); (10, 4, 34); (10, 5, 66) ]

let row_to_json r =
  J.Obj
    [
      ("k", J.Int r.k);
      ("s", J.Int r.s);
      ("group_bits", J.Int r.group_bits);
      ("analytic_lb", J.Float r.analytic_lb);
      ("blocked_ub", J.Int r.blocked_ub);
      ("natural_ub", J.Int r.natural_ub);
      ("ratio", J.Float r.ratio);
    ]

let row_of_json p =
  {
    k = P.int p "k";
    s = P.int p "s";
    group_bits = P.int p "group_bits";
    analytic_lb = P.float p "analytic_lb";
    blocked_ub = P.int p "blocked_ub";
    natural_ub = P.int p "natural_ub";
    ratio = P.float p "ratio";
  }

let structure_part () =
  (* structural facts behind the bound *)
  let g8 = Fft.butterfly 3 in
  let unique_path =
    Dmc_flow.Vertex_cut.disjoint_paths g8 ~src:0 ~dst:(Fft.vertex ~k:3 ~rank:3 0) = 1
  in
  let lines = Dmc_core.Lines.max_disjoint_lines g8 = 8 in
  (* tiny-instance optimality sandwich *)
  let tiny = Fft.butterfly 2 in
  let opt = Dmc_core.Optimal.rbw_io tiny ~s:4 in
  let report = Dmc_core.Bounds.analyze tiny ~s:4 in
  let tiny_blocked =
    Dmc_core.Strategy.io ~order:(Fft.blocked_order ~k:2 ~group_bits:2) tiny ~s:4
  in
  J.Obj
    [
      ("unique_path", J.Bool unique_path);
      ("lines", J.Bool lines);
      ("best_lb", J.Int report.Dmc_core.Bounds.best_lb);
      ("optimum", J.Int opt);
      ("tiny_blocked_ub", J.Int tiny_blocked);
    ]

let parts =
  List.map
    (fun ((k, group_bits, s) as config) ->
      {
        Experiment.part = Printf.sprintf "k%d-g%d-s%d" k group_bits s;
        run = (fun () -> row_to_json (List.hd (sweep ~configs:[ config ])));
      })
    default_configs
  @ [ { Experiment.part = "structure"; run = structure_part } ]

let doc_of_parts payloads =
  let rec split_last = function
    | [] -> invalid_arg "Fft_analysis.doc_of_parts"
    | [ x ] -> ([], x)
    | x :: rest ->
        let init, last = split_last rest in
        (x :: init, last)
  in
  let row_payloads, st = split_last payloads in
  let rows = List.map row_of_json row_payloads in
  let sound =
    List.for_all (fun r -> r.analytic_lb <= float_of_int r.blocked_ub) rows
  in
  let ratios = List.map (fun r -> r.ratio) rows in
  let rmin = List.fold_left Float.min (List.hd ratios) ratios in
  let rmax = List.fold_left Float.max (List.hd ratios) ratios in
  let blocked_wins =
    List.for_all (fun r -> 2 * r.blocked_ub <= r.natural_ub) rows
  in
  {
    Doc.name = "fft";
    blocks =
      [
        Doc.Section "FFT butterfly: blocked passes vs the n log n / log S bound";
        Doc.Table (table rows);
        Doc.check "unique input-output paths (the butterfly property)"
          (P.bool st "unique_path");
        Doc.check "n vertex-disjoint lines (Theorem-10-style hypothesis)"
          (P.bool st "lines");
        Doc.check "analytic LB below every blocked execution" sound;
        Doc.check "blocked ratio stable across 16x problem scaling (Θ-shape)"
          (rmax /. rmin < 1.5);
        Doc.check "blocked passes beat the rank-major order by >= 2x" blocked_wins;
        Doc.check "certified LB <= optimum <= blocked UB on the 4-point butterfly"
          (P.int st "best_lb" <= P.int st "optimum"
          && P.int st "optimum" <= P.int st "tiny_blocked_ub");
      ];
  }
