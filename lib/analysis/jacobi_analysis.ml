module Table = Dmc_util.Table
module Machines = Dmc_machine.Machines
module Balance = Dmc_machine.Balance
module Analytic = Dmc_core.Analytic

type threshold_row = {
  label : string;
  cache_words : int;
  balance : float;
  max_dim : float;
  bound_at : int -> Balance.verdict;
}

let make_row ~label ~cache_words ~balance =
  {
    label;
    cache_words;
    balance;
    max_dim = Analytic.jacobi_max_dim ~s:cache_words ~balance;
    bound_at =
      (fun d ->
        Balance.classify_lower
          ~lb_per_flop:(Analytic.jacobi_balance_threshold ~d ~s:cache_words)
          ~balance);
  }

let bgq_dram_l2 =
  make_row ~label:"IBM BG/Q DRAM->L2"
    ~cache_words:(Machines.cache_words Machines.bgq)
    ~balance:Machines.bgq.Machines.vertical_balance

(* The L2->L1 boundary of BG/Q: 16 KB L1 data cache (2048 words) and a
   2 words/FLOP L1 balance — the parameters that reproduce the paper's
   reported d <= 96. *)
let bgq_l2_l1 = make_row ~label:"IBM BG/Q L2->L1" ~cache_words:2048 ~balance:2.0

let thresholds () =
  bgq_dram_l2 :: bgq_l2_l1
  :: List.filter_map
       (fun (m : Machines.t) ->
         if m.name = Machines.bgq.Machines.name then None
         else
           Some
             (make_row
                ~label:(m.name ^ " DRAM->L2")
                ~cache_words:(Machines.cache_words m)
                ~balance:m.vertical_balance))
       Machines.table1

let table () =
  let t =
    Table.create
      ~headers:[ "Boundary"; "S (words)"; "balance"; "max dim"; "d=2"; "d=3"; "d=5" ]
  in
  List.iter
    (fun r ->
      let verdict d = Balance.verdict_to_string (r.bound_at d) in
      Table.add_row t
        [
          r.label;
          Table.fmt_int r.cache_words;
          Printf.sprintf "%.4f" r.balance;
          Printf.sprintf "%.2f" r.max_dim;
          verdict 2;
          verdict 3;
          verdict 5;
        ])
    (thresholds ());
  t

type tightness = {
  d : int;
  n : int;
  steps : int;
  s : int;
  analytic_lb : float;
  skewed_ub : int;
  natural_ub : int;
  ratio : float;
}

let tightness ?(d = 1) ?(n = 64) ?(steps = 16) ?(s = 18) () =
  let dims = List.init d (fun _ -> n) in
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims ~steps () in
  let tile =
    (* S must hold two tile-wide planes plus halo slack, so size the
       tile at a third of the per-dimension budget. *)
    max 2 (int_of_float (float_of_int (s / 3) ** (1.0 /. float_of_int d)))
  in
  let skewed = Dmc_gen.Stencil.skewed_order st ~tile in
  let natural = Dmc_gen.Stencil.natural_order st in
  let io order = Dmc_core.Strategy.io ~order st.graph ~s in
  let analytic_lb = Analytic.jacobi_lb ~d ~n ~steps ~s ~p:1 in
  let skewed_ub = io skewed in
  {
    d;
    n;
    steps;
    s;
    analytic_lb;
    skewed_ub;
    natural_ub = io natural;
    ratio = float_of_int skewed_ub /. analytic_lb;
  }

type horizontal_check = {
  dims : int list;
  blocks : int list;
  steps : int;
  measured_ghosts : int;
  predicted_ghosts : int;
}

let horizontal ?(dims = [ 12; 12 ]) ?(blocks = [ 2; 2 ]) ?(steps = 3) () =
  let st = Dmc_gen.Stencil.jacobi ~shape:Dmc_gen.Stencil.Star ~dims ~steps () in
  let grid = st.grid in
  let nodes = List.fold_left ( * ) 1 blocks in
  let owner_of_point = Dmc_sim.Partitioner.block_owner ~dims ~blocks in
  let npts = Dmc_gen.Grid.size grid in
  let owner v = owner_of_point (Dmc_gen.Grid.coord grid (v mod npts)) in
  let config =
    { Dmc_sim.Exec.capacities = [| 64; npts * (steps + 1) |]; nodes; owner }
  in
  let result =
    Dmc_sim.Exec.run st.graph ~order:(Dmc_gen.Stencil.natural_order st) config
  in
  {
    dims;
    blocks;
    steps;
    measured_ghosts = result.horizontal_total;
    predicted_ghosts = Dmc_sim.Partitioner.ghost_words ~dims ~blocks ~star:true * steps;
  }

let surface_to_volume_table ?(d = 3) ~blocks () =
  let t =
    Table.create
      ~headers:[ "block side B"; "ghost words"; "volume B^d"; "ghost/volume"; "~2d/B" ]
  in
  List.iter
    (fun b ->
      let ghost = Analytic.ghost_cells ~d ~block:b in
      let volume = float_of_int b ** float_of_int d in
      Table.add_row t
        [
          string_of_int b;
          Printf.sprintf "%.0f" ghost;
          Printf.sprintf "%.0f" volume;
          Printf.sprintf "%.4f" (ghost /. volume);
          Printf.sprintf "%.4f" (2.0 *. float_of_int d /. float_of_int b);
        ])
    blocks;
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts: thresholds, Theorem-10 tightness, horizontal
   ghost-cell traffic, and the surface-to-volume law. *)

module J = Dmc_util.Json
module P = Experiment.P

let thresholds_part () =
  let rows = thresholds () in
  let d3_ok =
    List.for_all
      (fun r -> r.max_dim < 3.0 || r.bound_at 3 <> Balance.Bandwidth_bound)
      rows
  in
  J.Obj
    [
      ("table", Doc.block_to_json (Doc.Table (table ())));
      ("bgq_max_dim", J.Float bgq_dram_l2.max_dim);
      ("l2l1_max_dim", J.Float bgq_l2_l1.max_dim);
      ("d3_ok", J.Bool d3_ok);
    ]

let tightness_to_json (x : tightness) =
  J.Obj
    [
      ("d", J.Int x.d);
      ("n", J.Int x.n);
      ("steps", J.Int x.steps);
      ("s", J.Int x.s);
      ("analytic_lb", J.Float x.analytic_lb);
      ("skewed_ub", J.Int x.skewed_ub);
      ("natural_ub", J.Int x.natural_ub);
      ("ratio", J.Float x.ratio);
    ]

let tightness_of_json p =
  {
    d = P.int p "d";
    n = P.int p "n";
    steps = P.int p "steps";
    s = P.int p "s";
    analytic_lb = P.float p "analytic_lb";
    skewed_ub = P.int p "skewed_ub";
    natural_ub = P.int p "natural_ub";
    ratio = P.float p "ratio";
  }

(* [t2] scales [t] by 2x in both [n] and [steps], so the three runs
   live in one part. *)
let tightness_part () =
  let t = tightness () in
  let t2 = tightness ~n:(2 * t.n) ~steps:(2 * t.steps) () in
  let t2d = tightness ~d:2 ~n:16 ~steps:8 ~s:48 () in
  J.List (List.map tightness_to_json [ t; t2; t2d ])

let horizontal_to_json (h : horizontal_check) =
  J.Obj
    [
      ("dims", J.List (List.map (fun d -> J.Int d) h.dims));
      ("blocks", J.List (List.map (fun b -> J.Int b) h.blocks));
      ("steps", J.Int h.steps);
      ("measured_ghosts", J.Int h.measured_ghosts);
      ("predicted_ghosts", J.Int h.predicted_ghosts);
    ]

let ints p k =
  List.map
    (fun v ->
      match J.as_int v with
      | Some i -> i
      | None -> Experiment.malformed "experiment payload: field %S holds a non-int" k)
    (P.list p k)

let horizontal_of_json p =
  {
    dims = ints p "dims";
    blocks = ints p "blocks";
    steps = P.int p "steps";
    measured_ghosts = P.int p "measured_ghosts";
    predicted_ghosts = P.int p "predicted_ghosts";
  }

let parts =
  [
    { Experiment.part = "thresholds"; run = thresholds_part };
    { Experiment.part = "tightness"; run = tightness_part };
    {
      Experiment.part = "horizontal";
      run = (fun () -> horizontal_to_json (horizontal ()));
    };
    {
      Experiment.part = "surface";
      run =
        (fun () ->
          J.Obj
            [
              ( "table",
                Doc.block_to_json
                  (Doc.Table
                     (surface_to_volume_table ~blocks:[ 4; 8; 16; 32; 64 ] ()))
              );
            ]);
    };
  ]

let doc_of_parts payloads =
  match payloads with
  | [ th; ti; ho; su ] ->
      let tights =
        match J.as_list ti with
        | Some l -> List.map tightness_of_json l
        | None -> Experiment.malformed "jacobi tightness payload is not a list"
      in
      let t, t2, t2d =
        match tights with
        | [ a; b; c ] -> (a, b, c)
        | _ -> Experiment.malformed "jacobi expects 3 tightness records"
      in
      let h = horizontal_of_json ho in
      let bgq_max_dim = P.float th "bgq_max_dim" in
      let l2l1_max_dim = P.float th "l2l1_max_dim" in
      let tightness_lines =
        String.concat ""
          (List.map
             (fun (x : tightness) ->
               Printf.sprintf
                 "  d=%d n=%d steps=%d S=%d: analytic LB = %.1f, skewed-tile UB = %d (%.1fx), natural order UB = %d (%.1fx)\n"
                 x.d x.n x.steps x.s x.analytic_lb x.skewed_ub x.ratio
                 x.natural_ub
                 (float_of_int x.natural_ub /. x.analytic_lb))
             [ t; t2; t2d ])
      in
      {
        Doc.name = "jacobi";
        blocks =
          [
            Doc.Section "Jacobi (Sec 5.4): dimension thresholds from the machine balance";
            Experiment.block_field th "table";
            Doc.Section "Jacobi: Theorem-10 tightness (skewed tiles vs the bound)";
            Doc.Text tightness_lines;
            Doc.Section
              "Jacobi: horizontal ghost-cell traffic (12x12 grid, 2x2 nodes, 3 steps)";
            Doc.Text
              (Printf.sprintf "  measured = %d words, predicted = %d words\n"
                 h.measured_ghosts h.predicted_ghosts);
            Doc.Text
              "\n  surface-to-volume (why the network never binds a big block, d = 3):\n\n";
            Experiment.block_field su "table";
            Doc.check "BG/Q DRAM->L2 threshold reproduces the paper's 4.83"
              (Float.abs (bgq_max_dim -. 4.83) < 0.1);
            Doc.check "BG/Q L2->L1 threshold reproduces the paper's 96"
              (Float.abs (l2l1_max_dim -. 96.0) < 1.0);
            Doc.check "3D stencils are not bandwidth-bound below the threshold"
              (P.bool th "d3_ok");
            Doc.check "skewed tiling beats the natural order by >= 3x"
              (3 * t.skewed_ub <= t.natural_ub);
            Doc.check
              "tiled I/O tracks the Theorem-10 \xce\x98(nT/S) shape (stable ratio under 2x scaling)"
              (Float.abs (t2.ratio -. t.ratio) < 0.35 *. t.ratio);
            Doc.check "Theorem-10 LB below the measured tiled execution"
              (t.analytic_lb <= float_of_int t.skewed_ub);
            Doc.check "2D tiles also beat the natural order under the d=2 bound"
              (t2d.analytic_lb <= float_of_int t2d.skewed_ub
              && t2d.skewed_ub < t2d.natural_ub);
            Doc.check "horizontal traffic matches the ghost-cell formula"
              (h.measured_ghosts = h.predicted_ghosts);
          ];
      }
  | _ -> Experiment.malformed "jacobi experiment expects 4 part payloads"
