(** Time/communication trade-off curves for the multi-processor
    pebbling game ({!Dmc_core.Mp_game}, after arXiv 2409.03898).

    For each workload, fix the per-processor capacity [S] and sweep
    the processor count [p]: the communication lower bound
    [IO_1(p * S)] (the pooled-memory simulation) can only fall as [p]
    grows, while the measured communication of a replayed — hence
    certified-valid — [p]-processor schedule typically rises.  A
    second curve per workload does the same for makespan, between
    {!Dmc_core.Parallel_bounds.mp_time_lower} and the replayed
    schedule's makespan. *)

val ps : int list
(** The swept processor counts, [[1; 2; 4; 8]]. *)

type point = {
  p : int;
  comm_lb : int;  (** [mp-comm-lb] at [(p, S)] *)
  measured : int;
      (** I/O of {!Dmc_core.Strategy.mp_schedule} replayed through
          {!Dmc_core.Mp_game.run} *)
  time_lb : int;  (** [mp-time-lb] at [(p, S)] *)
  time_ub : int;  (** makespan of the same replayed schedule *)
}

type curve = {
  workload : string;  (** registry spec *)
  s : int;
  seq_lb : int;  (** single-processor wavefront/floor bound at [S] *)
  seq_ub : int;  (** single-processor Belady I/O at [S] *)
  points : point list;
}

val measure : spec:string -> s:int -> unit -> curve
(** Build the workload from its registry [spec] and measure every
    point of the [p] sweep.  Raises [Failure] if an emitted schedule
    is rejected by the game engine — a valid replay is part of the
    measurement. *)

val curve_to_json : curve -> Dmc_util.Json.t

val curve_of_json : Dmc_util.Json.t -> curve

val sandwich_ok : curve -> bool
(** [comm_lb <= measured] and [time_lb <= time_ub] at every point. *)

val lb_monotone : curve -> bool
(** The communication lower bound is non-increasing in [p]. *)

val p1_agrees : curve -> bool
(** At [p = 1] the multi-processor bound collapses to the sequential
    one: [comm_lb = seq_lb] and [measured = seq_ub]. *)

val parts : Experiment.part list
(** One part per workload ([jacobi1d:32,8] at [S = 8], [fft:5] at
    [S = 6], [tree:64] at [S = 4]). *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** Two curves (communication, makespan) per workload plus the
    sandwich, monotonicity and [p = 1]-agreement checks. *)
