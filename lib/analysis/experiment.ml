module J = Dmc_util.Json
module Balance = Dmc_machine.Balance

type part = { part : string; run : unit -> J.t }

type t = {
  name : string;
  parts : part list;
  doc_of_parts : J.t list -> Doc.t;
}

let doc t = t.doc_of_parts (List.map (fun p -> p.run ()) t.parts)

let part_names t = List.map (fun p -> p.part) t.parts

let find_part t name = List.find_opt (fun p -> p.part = name) t.parts

(* ------------------------------------------------------------------ *)
(* Payload accessors.  Payloads are produced and consumed by this
   library; a shape mismatch means a version bug (or a checkpoint from
   another version, which the driver rejects before we get here), so
   these raise with the offending field instead of threading options. *)

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

module P = struct
  let field obj k =
    match J.mem obj k with
    | Some v -> v
    | None -> malformed "experiment payload: missing field %S" k

  let int obj k =
    match J.as_int (field obj k) with
    | Some v -> v
    | None -> malformed "experiment payload: field %S is not an int" k

  let float obj k =
    match J.as_float (field obj k) with
    | Some v -> v
    | None -> malformed "experiment payload: field %S is not a number" k

  let str obj k =
    match J.as_string (field obj k) with
    | Some v -> v
    | None -> malformed "experiment payload: field %S is not a string" k

  let bool obj k =
    match J.as_bool (field obj k) with
    | Some v -> v
    | None -> malformed "experiment payload: field %S is not a bool" k

  let list obj k =
    match J.as_list (field obj k) with
    | Some v -> v
    | None -> malformed "experiment payload: field %S is not a list" k

  let objs obj k = list obj k

  let int_opt obj k =
    match field obj k with
    | J.Null -> None
    | v -> (
        match J.as_int v with
        | Some v -> Some v
        | None -> malformed "experiment payload: field %S is not int?" k)

  let of_int_opt = function None -> J.Null | Some v -> J.Int v

  let strings obj k =
    List.map
      (fun v ->
        match J.as_string v with
        | Some s -> s
        | None -> malformed "experiment payload: field %S holds a non-string" k)
      (list obj k)

  let of_strings l = J.List (List.map (fun s -> J.String s) l)
end

(* ------------------------------------------------------------------ *)
(* Shared codecs.                                                     *)

let verdict_to_json v =
  J.String
    (match v with
    | Balance.Bandwidth_bound -> "bandwidth-bound"
    | Balance.Not_bandwidth_bound -> "not-bandwidth-bound"
    | Balance.Indeterminate -> "indeterminate")

let verdict_of_json j =
  match J.as_string j with
  | Some "bandwidth-bound" -> Balance.Bandwidth_bound
  | Some "not-bandwidth-bound" -> Balance.Not_bandwidth_bound
  | Some "indeterminate" -> Balance.Indeterminate
  | _ -> malformed "experiment payload: bad balance verdict"

let blocks_to_json blocks = J.List (List.map Doc.block_to_json blocks)

let blocks_of_json j =
  match J.as_list j with
  | None -> malformed "experiment payload: blocks field is not a list"
  | Some l ->
      List.map
        (fun b ->
          match Doc.block_of_json b with
          | Some b -> b
          | None -> malformed "experiment payload: unparseable block")
        l

let blocks_field obj k = blocks_of_json (P.field obj k)

let block_field obj k =
  match Doc.block_of_json (P.field obj k) with
  | Some b -> b
  | None -> malformed "experiment payload: field %S is not a block" k
