(** The Jacobi / stencil analysis of Section 5.4.

    Theorem 10 gives the tight bound [n^d T / (4 P (2S)^{1/d})]; the
    balance condition becomes [balance >= 1 / (4 (2S)^{1/d})], i.e. the
    stencil is memory-bound only beyond a dimension threshold that
    depends on the cache size — [d <= 4.83] for BG/Q's DRAM-to-L2 link
    (so real 2D/3D stencils are fine) and [d <= 96] for L2-to-L1. *)

type threshold_row = {
  label : string;
  cache_words : int;
  balance : float;
  max_dim : float;       (** the paper's [4 * balance * log2(2S)] *)
  bound_at : int -> Dmc_machine.Balance.verdict;
      (** verdict for a given stencil dimensionality *)
}

val bgq_dram_l2 : threshold_row
(** BG/Q memory-to-L2: 32 MB = 4 MWords, balance 0.052 → [d <= 4.83]. *)

val bgq_l2_l1 : threshold_row
(** BG/Q L2-to-L1: 16 KB = 2 KWords, balance 2.0 (inferred from the
    paper's reported [d <= 96]). *)

val thresholds : unit -> threshold_row list
(** The two boundaries above plus the DRAM-to-cache rows of the other
    Table-1 machines. *)

val table : unit -> Dmc_util.Table.t

type tightness = {
  d : int;
  n : int;
  steps : int;
  s : int;
  analytic_lb : float;        (** Theorem 10 with [P = 1] *)
  skewed_ub : int;            (** measured I/O of the skewed-tile order *)
  natural_ub : int;           (** measured I/O of the untiled order *)
  ratio : float;              (** [skewed_ub / analytic_lb] *)
}

val tightness : ?d:int -> ?n:int -> ?steps:int -> ?s:int -> unit -> tightness
(** Play the skewed-tiled and natural orders through the RBW scheduler
    on a concrete stencil CDAG and compare with Theorem 10.  Defaults:
    [d = 1], [n = 64], [steps = 16], [s = 18]. *)

type horizontal_check = {
  dims : int list;
  blocks : int list;
  steps : int;
  measured_ghosts : int;      (** horizontal words from {!Dmc_sim.Exec} *)
  predicted_ghosts : int;     (** {!Dmc_sim.Partitioner.ghost_words} x T *)
}

val horizontal : ?dims:int list -> ?blocks:int list -> ?steps:int -> unit -> horizontal_check
(** Block-partition a stencil across nodes, execute it through the
    simulator, and check the horizontal traffic against the ghost-cell
    formula.  Defaults: a 12x12 grid in 2x2 blocks, 3 steps. *)

val surface_to_volume_table : ?d:int -> blocks:int list -> unit -> Dmc_util.Table.t
(** The Section-5.4.2 scaling law made visible: ghost words per block
    vs the block's compute volume, [((B+2)^d - B^d) / B^d ≈ 2d/B], as
    the block side [B] sweeps — the reason horizontal traffic never
    binds a big-enough stencil block. *)

val tightness_to_json : tightness -> Dmc_util.Json.t

val tightness_of_json : Dmc_util.Json.t -> tightness

val horizontal_to_json : horizontal_check -> Dmc_util.Json.t

val horizontal_of_json : Dmc_util.Json.t -> horizontal_check

val parts : Experiment.part list
(** Four parts: thresholds, Theorem-10 tightness, horizontal ghost-cell
    traffic, and the surface-to-volume law. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
