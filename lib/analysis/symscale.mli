(** E-SYMSCALE: closed-form lower-bound curves from symbolic
    recombination, extending to n = 10^9 (jacobi1d) and 2^30 rows
    (fft) — sizes no frozen-CSR engine can touch — cross-validated
    exactly against the materialized numeric reference wherever both
    paths run, plus a windowed implicit-wavefront liveness check.

    Deterministic end to end: the document is byte-stable across runs,
    worker shardings and checkpoint reloads. *)

val parts : Experiment.part list

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
