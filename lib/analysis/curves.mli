(** I/O-versus-fast-memory curves: the series a roofline-style figure
    would plot.  For each workload, sweep the fast-memory capacity [S]
    and report the analytic lower bound next to the best measured
    schedule at that capacity — who wins, by what factor, and how both
    fall as [S] grows (the Hong–Kung shapes: [1/sqrt S] for matmul,
    [1/S^{1/d}] for stencils, [1/log S] for the FFT). *)

type point = {
  s : int;
  lb : float;        (** analytic lower bound at this capacity *)
  ub : int;          (** best measured schedule at this capacity *)
}

type curve = {
  workload : string;
  shape : string;    (** the predicted decay, e.g. "~ 1/sqrt S" *)
  points : point list;
}

val matmul_curve : ?n:int -> ss:int list -> unit -> curve
(** Blocked matrix multiplication; default [n = 12]. *)

val jacobi_curve : ?n:int -> ?steps:int -> ss:int list -> unit -> curve
(** Skewed-tiled 1D Jacobi; defaults [n = 96], [steps = 24]. *)

val fft_curve : ?k:int -> ss:int list -> unit -> curve
(** Pass-blocked butterfly; default [k = 8]. *)

val table : curve -> Dmc_util.Table.t

val curve_to_json : curve -> Dmc_util.Json.t

val curve_of_json : Dmc_util.Json.t -> curve

val parts : Experiment.part list
(** One part per workload curve. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** All three curves plus the shape check: LB ≤ UB pointwise, both
    decrease (weakly, within measurement wiggle) as [S] grows, and the
    UB/LB ratio stays bounded across the sweep. *)
