module J = Dmc_util.Json

type t = { exp : string; part : string }

let to_json job =
  J.Obj
    [
      ("kind", J.String "dmc-part-job");
      ("exp", J.String job.exp);
      ("part", J.String job.part);
    ]

let of_json json =
  let str field = Option.bind (J.mem json field) J.as_string in
  match (str "kind", str "exp", str "part") with
  | Some "dmc-part-job", Some exp, Some part -> Ok { exp; part }
  | _ -> Error "not a dmc-part-job object"

let run job =
  match Report.find job.exp with
  | None -> Error (Printf.sprintf "unknown experiment %s" job.exp)
  | Some e -> (
      match Experiment.find_part e job.part with
      | None ->
          Error
            (Printf.sprintf "experiment %s has no part %s" job.exp job.part)
      | Some p -> Ok (p.run ()))
