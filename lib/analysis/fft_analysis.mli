(** FFT butterfly analysis — the flagship workload of the
    no-recomputation literature the paper builds on (Hong–Kung,
    Savage, Ranjan et al., Section 6).

    The sequential bound is [Θ(n log n / log S)]; the pass-structured
    blocked schedule ({!Dmc_gen.Fft.blocked_order}) attains that shape.
    This experiment measures both and also demonstrates the butterfly's
    defining structural property (unique input/output paths, [n]
    disjoint lines) with the max-flow machinery. *)

type row = {
  k : int;                (** [n = 2^k] *)
  s : int;
  group_bits : int;
  analytic_lb : float;    (** [n log2 n / (2 log2 S)] *)
  blocked_ub : int;       (** measured I/O of the pass-blocked schedule *)
  natural_ub : int;       (** measured I/O of the rank-major order *)
  ratio : float;          (** [blocked_ub / analytic_lb] *)
}

val sweep : configs:(int * int * int) list -> row list
(** Each config is [(k, group_bits, s)]. *)

val table : row list -> Dmc_util.Table.t

val row_to_json : row -> Dmc_util.Json.t

val row_of_json : Dmc_util.Json.t -> row

val parts : Experiment.part list
(** One part per sweep config, plus a "structure" part measuring the
    butterfly's unique-path/disjoint-lines facts and the tiny-instance
    optimality sandwich. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
(** The sweep plus the structural checks: bounds below measurements,
    the blocked ratio stable (Θ-shape), blocked beats natural by a
    growing factor, and every certified wavefront bound stays below the
    exhaustive optimum on a tiny butterfly. *)
