(** The GMRES analysis of Section 5.3.

    Vertical: Theorem 9 gives [6 n^d m / P] words, i.e. [6 / (m + 20)]
    words per FLOP — bandwidth-bound for small Krylov dimensions [m],
    compute-bound once [m] grows past the crossover
    [m* = 6/balance - 20].  Horizontal: [6 N^{1/d} / (n m)] words per
    FLOP, orders of magnitude below every balance. *)

type sweep_point = {
  m : int;
  vertical_per_flop : float;        (** [6 / (m + 20)] *)
  horizontal_per_flop : float;
  verdicts : (string * Dmc_machine.Balance.verdict) list;
      (** vertical verdict per Table-1 machine *)
}

val sweep : ?d:int -> ?n:int -> ms:int list -> unit -> sweep_point list

val crossover_m : balance:float -> float
(** The [m] beyond which [6/(m+20)] drops below the given balance. *)

val table : ?d:int -> ?n:int -> ms:int list -> unit -> Dmc_util.Table.t

type structure_check = {
  grid_points : int;
  iters : int;
  h_wavefront : int;    (** measured [|Wmin(h_{i,i})|]; paper: >= 2 n^d *)
  norm_wavefront : int; (** measured [|Wmin(h_{i+1,i})|]; paper: >= n^d *)
  decomposed_lb : int;
  belady_ub : int;
  s : int;
}

val structure : ?dims:int list -> ?iters:int -> ?s:int -> unit -> structure_check
(** The Theorem-9 machinery run on a concrete small GMRES CDAG;
    defaults: a 2D [5^2] grid, 3 outer iterations, [s = 16]. *)

val structure_to_json : structure_check -> Dmc_util.Json.t

val structure_of_json : Dmc_util.Json.t -> structure_check

val parts : Experiment.part list
(** Two parts: the m-sweep and the Theorem-9 machinery. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
