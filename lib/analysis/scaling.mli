(** Architectural what-if sweeps built on the Section-5 machinery —
    the paper's concluding point that the framework tells architects
    {e which} parameter to grow.

    All functions are pure table builders over the analytic bounds. *)

type cg_node_point = {
  nodes : int;
  horizontal_per_flop : float;  (** [6 N^{1/d} / (20 n)] *)
  network_bound_on : string list;
      (** Table-1 machines whose horizontal balance this exceeds *)
}

val cg_node_sweep : ?d:int -> ?n:int -> node_counts:int list -> unit -> cg_node_point list
(** CG's vertical cost per FLOP is node-count independent (0.3), but
    the ghost-cell surface grows with the node count: this sweep finds
    the scale at which the {e network} finally becomes a co-bottleneck. *)

val cg_network_bound_at : ?d:int -> ?n:int -> balance:float -> unit -> float
(** The node count where [6 N^{1/d}/(20 n) = balance]:
    [N = (balance * 20n / 6)^d]. *)

type cache_point = {
  cache_mwords : float;
  max_dim_paper : float;   (** the paper's [4 * balance * log2(2S)] *)
  threshold_2d : float;    (** exact per-FLOP floor [1/(4 (2S)^{1/2})] *)
  threshold_3d : float;
}

val jacobi_cache_sweep : ?balance:float -> cache_mwords:float list -> unit -> cache_point list
(** How the Jacobi dimension threshold moves with the cache size, at a
    fixed DRAM balance (default BG/Q's 0.052). *)

val min_balance_table : unit -> Dmc_util.Table.t
(** Per algorithm, the minimum machine balance (words/FLOP) under which
    it can possibly avoid being bandwidth-bound: 0.3 for CG,
    [6/(m+20)] for GMRES at several [m], [1/(4 (2S)^{1/d})] for 2D/3D
    Jacobi at the BG/Q cache size. *)

val balance_trend_table : unit -> Dmc_util.Table.t
(** The balance timeline over {!Dmc_machine.Machines.extended}: per
    system, the (estimated) vertical and horizontal balances and the
    verdicts for CG and GMRES (m = 32) — the paper's motivating trend,
    extended past 2014: every algorithm with a constant words/FLOP
    floor drifts deeper into bandwidth-bound territory. *)

val tables : unit -> Dmc_util.Table.t list
(** All three sweeps, rendered. *)

val parts : Experiment.part list
(** Two parts: the three what-if sweeps and the balance-trend table. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
