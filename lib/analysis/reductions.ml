module Cdag = Dmc_cdag.Cdag

type row = {
  grid_points : int;
  iters : int;
  s : int;
  cg_wavefront : int;
  cheb_wavefront : int;
  cg_lb : int;
  cheb_lb : int;
  cg_ub : int;
  cheb_ub : int;
}

(* Per-iteration decomposition by exact per-piece wavefront maxima,
   slicing at each iteration's final update vector. *)
let sliced_bound g ~bounds ~s =
  let n_slices = Array.length bounds in
  let slice_of v =
    let rec find c =
      if c >= n_slices then n_slices - 1
      else if v <= bounds.(c) then c
      else find (c + 1)
    in
    find 0
  in
  let color = Array.init (Cdag.n_vertices g) slice_of in
  Dmc_core.Decompose.sum_disjoint g ~color
    ~bound:(fun piece -> Dmc_core.Wavefront.lower_bound piece ~s)

let compare ?(dims = [ 5; 5 ]) ?(iters = 3) ?(s = 12) () =
  let cg = Dmc_gen.Solver.cg ~dims ~iters in
  let cheb = Dmc_gen.Solver.chebyshev ~dims ~iters in
  let npts = Dmc_gen.Grid.size cg.Dmc_gen.Solver.grid in
  let cg_bounds =
    Array.map
      (fun (it : Dmc_gen.Solver.cg_iteration) ->
        let p = it.Dmc_gen.Solver.p_next in
        p.(Array.length p - 1))
      cg.Dmc_gen.Solver.iterations
  in
  let cheb_bounds =
    Array.map
      (fun (it : Dmc_gen.Solver.chebyshev_iteration) ->
        let x = it.Dmc_gen.Solver.ch_x_next in
        x.(Array.length x - 1))
      cheb.Dmc_gen.Solver.ch_iterations
  in
  let cg_last = cg.Dmc_gen.Solver.iterations.(iters - 1) in
  let cheb_last = cheb.Dmc_gen.Solver.ch_iterations.(iters - 1) in
  let cheb_wavefront =
    Array.fold_left
      (fun acc v ->
        max acc (Dmc_core.Wavefront.min_wavefront cheb.Dmc_gen.Solver.ch_graph v))
      0 cheb_last.Dmc_gen.Solver.residual
  in
  {
    grid_points = npts;
    iters;
    s;
    cg_wavefront =
      Dmc_core.Wavefront.min_wavefront cg.Dmc_gen.Solver.graph
        cg_last.Dmc_gen.Solver.a_scalar;
    cheb_wavefront;
    cg_lb = sliced_bound cg.Dmc_gen.Solver.graph ~bounds:cg_bounds ~s;
    cheb_lb = sliced_bound cheb.Dmc_gen.Solver.ch_graph ~bounds:cheb_bounds ~s;
    cg_ub = Dmc_core.Strategy.io cg.Dmc_gen.Solver.graph ~s;
    cheb_ub = Dmc_core.Strategy.io cheb.Dmc_gen.Solver.ch_graph ~s;
  }

(* ------------------------------------------------------------------ *)
(* Experiment part: the single CG-vs-Chebyshev comparison. *)

module J = Dmc_util.Json
module P = Experiment.P

let row_to_json r =
  J.Obj
    [
      ("grid_points", J.Int r.grid_points);
      ("iters", J.Int r.iters);
      ("s", J.Int r.s);
      ("cg_wavefront", J.Int r.cg_wavefront);
      ("cheb_wavefront", J.Int r.cheb_wavefront);
      ("cg_lb", J.Int r.cg_lb);
      ("cheb_lb", J.Int r.cheb_lb);
      ("cg_ub", J.Int r.cg_ub);
      ("cheb_ub", J.Int r.cheb_ub);
    ]

let row_of_json p =
  {
    grid_points = P.int p "grid_points";
    iters = P.int p "iters";
    s = P.int p "s";
    cg_wavefront = P.int p "cg_wavefront";
    cheb_wavefront = P.int p "cheb_wavefront";
    cg_lb = P.int p "cg_lb";
    cheb_lb = P.int p "cheb_lb";
    cg_ub = P.int p "cg_ub";
    cheb_ub = P.int p "cheb_ub";
  }

let parts =
  [
    {
      Experiment.part = "compare";
      run = (fun () -> row_to_json (compare ()));
    };
  ]

let doc_of_parts payloads =
  let r = row_of_json (List.hd payloads) in
  {
    Doc.name = "reductions";
    blocks =
      [
        Doc.Section
          "Where CG's memory wall lives: dot products vs a reduction-free Krylov";
        Doc.Text
          (Printf.sprintf
             "  grid n^d = %d, %d iterations, S = %d\n\n\
             \  CG        : wavefront at the dot-product scalar = %3d  (2 n^d = %d)\n\
             \  Chebyshev : widest wavefront in an iteration    = %3d  (stencil-local)\n\n\
             \  per-iteration decomposed LB:  CG %d   Chebyshev %d\n\
             \  measured Belady executions:   CG %d   Chebyshev %d\n\n\
             \  Same SpMV, same updates -- removing the global reductions removes the\n\
             \  2 n^d pinch.  This is the certified version of the communication-\n\
             \  avoiding-Krylov argument.\n"
             r.grid_points r.iters r.s r.cg_wavefront (2 * r.grid_points)
             r.cheb_wavefront r.cg_lb r.cheb_lb r.cg_ub r.cheb_ub);
        Doc.check "CG's wavefront reaches 2 n^d"
          (r.cg_wavefront >= 2 * r.grid_points);
        Doc.check "Chebyshev's wavefronts stay below n^d"
          (r.cheb_wavefront < r.grid_points);
        Doc.check "both bounds below their executions"
          (r.cg_lb <= r.cg_ub && r.cheb_lb <= r.cheb_ub);
        Doc.check "Chebyshev's certified bound is at most half of CG's"
          (2 * r.cheb_lb <= r.cg_lb);
      ];
  }
