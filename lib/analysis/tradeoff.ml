module J = Dmc_util.Json
module P = Experiment.P
module Bounds = Dmc_core.Bounds
module Mp_bounds = Dmc_core.Mp_bounds
module Mp_game = Dmc_core.Mp_game
module Strategy = Dmc_core.Strategy
module Wavefront = Dmc_core.Wavefront
module Workload = Dmc_gen.Workload

(* Time/communication trade-off curves for the multi-processor game:
   sweep the processor count at a fixed per-processor capacity S and
   put the measured communication of a replayed (hence valid) schedule
   between the simulation lower bound and itself.  The interesting
   structure is in the two directions: the lower bound IO_1(p*S) can
   only fall as p grows (pooled memory), while the measured
   communication of an actual p-processor execution typically rises
   (values cross processor boundaries through slow memory). *)

let ps = [ 1; 2; 4; 8 ]

type point = {
  p : int;
  comm_lb : int;  (** [mp-comm-lb]: the pooled-memory simulation bound *)
  measured : int;  (** I/O of the replayed [Strategy.mp_schedule] *)
  time_lb : int;  (** [mp-time-lb]: max of span and work/comm share *)
  time_ub : int;  (** makespan of the same replayed schedule *)
}

type curve = {
  workload : string;  (** registry spec *)
  s : int;
  seq_lb : int;  (** single-processor wavefront/floor bound at S *)
  seq_ub : int;  (** single-processor Belady I/O at S *)
  points : point list;
}

let engine_value g ~p ~s engine =
  let row = Mp_bounds.row g ~p ~s engine in
  match row.Bounds.value with
  | Some v -> v
  | None ->
      failwith
        (Printf.sprintf "tradeoff: %s produced no value at p=%d s=%d" engine p
           s)

let measure ~spec ~s () =
  let g = Workload.parse_exn spec in
  let seq_lb = max (Bounds.io_floor g) (Wavefront.lower_bound g ~s) in
  let seq_ub = Strategy.io ~policy:Strategy.Belady g ~s in
  let points =
    List.map
      (fun p ->
        let moves = Strategy.mp_schedule ~policy:Strategy.Belady g ~p ~s in
        let stats =
          match Mp_game.run g ~p ~s moves with
          | Ok stats -> stats
          | Error e ->
              failwith
                (Printf.sprintf
                   "tradeoff: schedule for %s rejected at step %d: %s" spec
                   e.Mp_game.step e.Mp_game.reason)
        in
        {
          p;
          comm_lb = engine_value g ~p ~s "mp-comm-lb";
          measured = stats.Mp_game.io;
          time_lb = engine_value g ~p ~s "mp-time-lb";
          time_ub = stats.Mp_game.makespan;
        })
      ps
  in
  { workload = spec; s; seq_lb; seq_ub; points }

let curve_to_json c =
  J.Obj
    [
      ("workload", J.String c.workload);
      ("s", J.Int c.s);
      ("seq_lb", J.Int c.seq_lb);
      ("seq_ub", J.Int c.seq_ub);
      ( "points",
        J.List
          (List.map
             (fun pt ->
               J.Obj
                 [
                   ("p", J.Int pt.p);
                   ("comm_lb", J.Int pt.comm_lb);
                   ("measured", J.Int pt.measured);
                   ("time_lb", J.Int pt.time_lb);
                   ("time_ub", J.Int pt.time_ub);
                 ])
             c.points) );
    ]

let curve_of_json payload =
  {
    workload = P.str payload "workload";
    s = P.int payload "s";
    seq_lb = P.int payload "seq_lb";
    seq_ub = P.int payload "seq_ub";
    points =
      List.map
        (fun pt ->
          {
            p = P.int pt "p";
            comm_lb = P.int pt "comm_lb";
            measured = P.int pt "measured";
            time_lb = P.int pt "time_lb";
            time_ub = P.int pt "time_ub";
          })
        (P.objs payload "points");
  }

let parts =
  [
    {
      Experiment.part = "jacobi1d";
      run = (fun () -> curve_to_json (measure ~spec:"jacobi1d:32,8" ~s:8 ()));
    };
    {
      Experiment.part = "fft";
      run = (fun () -> curve_to_json (measure ~spec:"fft:5" ~s:6 ()));
    };
    {
      Experiment.part = "tree";
      run = (fun () -> curve_to_json (measure ~spec:"tree:64" ~s:4 ()));
    };
  ]

let sandwich_ok c =
  List.for_all
    (fun pt -> pt.comm_lb <= pt.measured && pt.time_lb <= pt.time_ub)
    c.points

let lb_monotone c =
  let rec go = function
    | a :: (b :: _ as rest) -> b.comm_lb <= a.comm_lb && go rest
    | _ -> true
  in
  go c.points

let p1_agrees c =
  match c.points with
  | { p = 1; comm_lb; measured; _ } :: _ ->
      comm_lb = c.seq_lb && measured = c.seq_ub
  | _ -> false

let doc_of_parts payloads =
  let curves = List.map curve_of_json payloads in
  let blocks_of c =
    [
      Doc.Facts
        [
          [
            Doc.fact "workload" c.workload;
            Doc.fact "S" (string_of_int c.s);
            Doc.fact "sequential lb" (string_of_int c.seq_lb);
            Doc.fact "sequential ub" (string_of_int c.seq_ub);
          ];
        ];
      Doc.Curve
        {
          Doc.curve = c.workload ^ " communication";
          shape = "lb ~ IO_1(pS), measured rises with p";
          xlabel = "p";
          points =
            List.map
              (fun pt ->
                { Doc.x = pt.p; lb = float_of_int pt.comm_lb; ub = pt.measured })
              c.points;
        };
      Doc.Curve
        {
          Doc.curve = c.workload ^ " makespan";
          shape = "lb ~ max(span, (work + g comm)/p)";
          xlabel = "p";
          points =
            List.map
              (fun pt ->
                { Doc.x = pt.p; lb = float_of_int pt.time_lb; ub = pt.time_ub })
              c.points;
        };
      Doc.check
        (Printf.sprintf "comm lb <= measured and time lb <= makespan for %s"
           c.workload)
        (sandwich_ok c);
      Doc.check
        (Printf.sprintf "comm lb non-increasing in p for %s" c.workload)
        (lb_monotone c);
      Doc.check
        (Printf.sprintf "p=1 agrees with the sequential bounds for %s"
           c.workload)
        (p1_agrees c);
    ]
  in
  {
    Doc.name = "tradeoff";
    blocks =
      (Doc.Section "time/communication trade-offs in the multi-processor game"
      :: List.concat_map blocks_of curves)
      @ [ Doc.Text "\n" ];
  }
