(** The Conjugate Gradient analysis of Section 5.2.

    Vertical: Theorem 8 gives [6 n^d T / P] words through the busiest
    memory–cache link, i.e. [6/20 = 0.3] words per FLOP — above every
    Table-1 balance, so CG is memory-bandwidth bound on all of them.
    Horizontal: the ghost-cell upper bound gives
    [6 N_nodes^{1/3} / (20 n)] words per FLOP — far below the
    balances, so the interconnect is never the bottleneck. *)

type row = {
  machine : Dmc_machine.Machines.t;
  vertical_per_flop : float;     (** 0.3, machine-independent *)
  vertical_verdict : Dmc_machine.Balance.verdict;
  horizontal_per_flop : float;
  horizontal_verdict : Dmc_machine.Balance.verdict;
}

val analyze : ?d:int -> ?n:int -> unit -> row list
(** Defaults [d = 3], [n = 1000] — the paper's setting. *)

val table : ?d:int -> ?n:int -> unit -> Dmc_util.Table.t

type structure_check = {
  grid_points : int;
  iters : int;
  a_wavefront : int;   (** measured [|Wmin(υ_x)|]; paper claims >= 2 n^d *)
  g_wavefront : int;   (** measured [|Wmin(υ_y)|]; paper claims >= n^d *)
  decomposed_lb : int; (** the Theorem-8 pipeline run on the real CDAG *)
  belady_ub : int;     (** a measured valid execution with the same S *)
  s : int;
}

val structure : ?dims:int list -> ?iters:int -> ?s:int -> unit -> structure_check
(** Run the actual Theorem-8 machinery (iteration slicing + per-slice
    wavefront min-cuts + decomposition) on a concrete small CG CDAG and
    sandwich it against a valid execution.  Defaults: a 3D [4^3] grid,
    2 iterations, [s = 16]. *)

val structure_to_json : structure_check -> Dmc_util.Json.t

val structure_of_json : Dmc_util.Json.t -> structure_check

val parts : Experiment.part list
(** Three parts: the balance table, the Theorem-8 machinery, and the
    execution-time model. *)

val doc_of_parts : Dmc_util.Json.t list -> Doc.t
