(** Structured report IR for the experiment pipeline.

    Every experiment builds a [Doc.t] — an ordered list of typed blocks —
    instead of printing.  Three renderers consume it:

    - {!to_text}: byte-identical to the historical print-based reports
      (locked by the golden fixtures under [test/golden/]);
    - {!to_json} / {!of_json}: lossless structured form, used by
      [dmc experiment --json], the v2 checkpoints, and [dmc bench-diff];
    - {!to_markdown}: human-readable export with escaped table cells. *)

type fact = { key : string; value : string }

type check = {
  label : string;
  ok : bool;
  lb : float option;      (** analytic lower bound, when the check is a sandwich *)
  measured : float option;
  ub : float option;
}

type curve_point = { x : int; lb : float; ub : int }

type curve = {
  curve : string;
  shape : string;
  xlabel : string;
      (** x-axis header — ["S"] for the capacity rooflines, ["p"] for
          the processor-count trade-off curves.  JSON payloads written
          before the field existed decode as ["S"]. *)
  points : curve_point list;
}
(** A bound-vs-parameter roofline curve: rendered as a titled
    x / analytic LB / measured UB / UB-over-LB table. *)

type block =
  | Section of string       (** ["\n== title ==\n\n"] in text *)
  | Text of string          (** verbatim glue — already-formatted prose *)
  | Facts of fact list list (** each inner list is one ["  k = v, k = v"] line *)
  | Table of Dmc_util.Table.t
  | Curve of curve
  | Check of check          (** ["  [ok] label"] / ["  [FAIL] label"] *)

type t = { name : string; blocks : block list }

val fact : string -> string -> fact

val check :
  ?lb:float -> ?measured:float -> ?ub:float -> string -> bool -> block

val checks : t -> check list
(** All [Check] blocks, in document order. *)

val ok : t -> bool
(** True iff every check in the document passed. *)

val to_text : t -> string
(** Byte-identical to the pre-IR print-based report for this experiment. *)

val to_json : t -> Dmc_util.Json.t

val of_json : Dmc_util.Json.t -> (t, string) result

val block_to_json : block -> Dmc_util.Json.t
(** Single-block codec, for experiment parts that pre-render blocks
    into their payloads. *)

val block_of_json : Dmc_util.Json.t -> block option

val to_markdown : t -> string
(** GitHub-flavored Markdown; [|], [\ ] and newlines in table cells are
    escaped so cell content cannot break table structure. *)
