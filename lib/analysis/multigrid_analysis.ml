module Table = Dmc_util.Table
module Cdag = Dmc_cdag.Cdag
module Multigrid = Dmc_gen.Multigrid

type row = {
  cycles : int;
  work : int;
  decomposed_lb : int;
  whole_lb : int;
  belady_ub : int;
  s : int;
}

let sweep ?(dims = [ 33 ]) ?(levels = 3) ?(s = 6) ~cycle_counts () =
  List.map
    (fun cycles ->
      let mg = Multigrid.v_cycle ~dims ~levels ~cycles () in
      let g = mg.Multigrid.graph in
      let npts = Multigrid.finest_points mg in
      (* Slice per cycle: every vertex belongs to the cycle whose
         finest-level trace produced it.  Vertex ids grow monotonically
         with the cycle, so the last vertex of each cycle's final
         post-smoothing sweep is a slice boundary. *)
      let bounds =
        Array.map
          (fun (traces : Multigrid.level_trace array) ->
            let fine = traces.(0) in
            let post = fine.Multigrid.post_smooth in
            let last_sweep = post.(Array.length post - 1) in
            last_sweep.(Array.length last_sweep - 1))
          mg.Multigrid.cycles
      in
      let slice_of v =
        let rec find c =
          if c >= Array.length bounds then Array.length bounds - 1
          else if v <= bounds.(c) then c
          else find (c + 1)
        in
        find 0
      in
      let color = Array.init (Cdag.n_vertices g) slice_of in
      let decomposed_lb =
        Dmc_core.Decompose.sum_disjoint g ~color
          ~bound:(fun piece -> Dmc_core.Wavefront.lower_bound piece ~s)
      in
      ignore npts;
      {
        cycles;
        work = Multigrid.work mg;
        decomposed_lb;
        whole_lb = Dmc_core.Wavefront.lower_bound g ~s;
        belady_ub = Dmc_core.Strategy.io g ~s;
        s;
      })
    cycle_counts

let table rows =
  let t =
    Table.create
      ~headers:[ "cycles"; "work"; "whole-graph LB"; "decomposed LB"; "Belady UB" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.cycles;
          string_of_int r.work;
          string_of_int r.whole_lb;
          string_of_int r.decomposed_lb;
          string_of_int r.belady_ub;
        ])
    rows;
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts: one per cycle count. *)

module J = Dmc_util.Json
module P = Experiment.P

let default_cycle_counts = [ 1; 2; 4; 8 ]

let row_to_json r =
  J.Obj
    [
      ("cycles", J.Int r.cycles);
      ("work", J.Int r.work);
      ("decomposed_lb", J.Int r.decomposed_lb);
      ("whole_lb", J.Int r.whole_lb);
      ("belady_ub", J.Int r.belady_ub);
      ("s", J.Int r.s);
    ]

let row_of_json p =
  {
    cycles = P.int p "cycles";
    work = P.int p "work";
    decomposed_lb = P.int p "decomposed_lb";
    whole_lb = P.int p "whole_lb";
    belady_ub = P.int p "belady_ub";
    s = P.int p "s";
  }

let parts =
  List.map
    (fun cycles ->
      {
        Experiment.part = Printf.sprintf "cycles%d" cycles;
        run =
          (fun () -> row_to_json (List.hd (sweep ~cycle_counts:[ cycles ] ())));
      })
    default_cycle_counts

let doc_of_parts payloads =
  let rows = List.map row_of_json payloads in
  let sound =
    List.for_all
      (fun r -> r.decomposed_lb <= r.belady_ub && r.whole_lb <= r.belady_ub)
      rows
  in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let linear_growth =
    last.decomposed_lb >= (List.length rows - 1) * first.decomposed_lb / 2
  in
  {
    Doc.name = "multigrid";
    blocks =
      [
        Doc.Section "Extension: multigrid V-cycles under the paper's machinery";
        Doc.Table (table rows);
        Doc.check "bounds below measured executions on every cycle count" sound;
        Doc.check
          "per-cycle decomposition scales with the cycle count (as Theorem 8's does with T)"
          linear_growth;
      ];
  }
