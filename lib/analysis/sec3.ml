module Table = Dmc_util.Table
module Analytic = Dmc_core.Analytic

type row = {
  n : int;
  s : int;
  matmul_step_lb : float;
  naive_sum_lb : float;
  composite_upper_rb : float;
  separation : float;
  rbw_measured_ub : int option;
  rbw_lb : int option;
}

let default_ns = [ 4; 8; 16; 32; 64 ]

let row_for ?(measure_limit = 8) n =
  let s = (4 * n) + 4 in
  let matmul_step_lb = Analytic.matmul_lb ~n ~s in
  let outer = Analytic.outer_product_io ~n in
  let reduce = (float_of_int n *. float_of_int n) +. 1.0 in
  let naive_sum_lb = (2.0 *. outer) +. matmul_step_lb +. reduce in
  let composite_upper_rb = Analytic.composite_io_upper ~n in
  let measured =
    if n <= measure_limit then begin
      let c = Dmc_gen.Linalg.composite n in
      Some
        ( Dmc_core.Strategy.io c.graph ~s,
          Dmc_core.Wavefront.lower_bound c.graph ~s )
    end
    else None
  in
  {
    n;
    s;
    matmul_step_lb;
    naive_sum_lb;
    composite_upper_rb;
    separation = naive_sum_lb /. composite_upper_rb;
    rbw_measured_ub = Option.map fst measured;
    rbw_lb = Option.map snd measured;
  }

let sweep ?(ns = default_ns) ?measure_limit () =
  List.map (fun n -> row_for ?measure_limit n) ns

let table_of_rows rows =
  let t =
    Table.create
      ~headers:
        [
          "n";
          "S=4n+4";
          "matmul step LB";
          "naive sum of LBs";
          "composite UB (RB)";
          "separation";
          "RBW measured UB";
          "RBW certified LB";
        ]
  in
  let opt = function None -> "-" | Some x -> string_of_int x in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.s;
          Printf.sprintf "%.1f" r.matmul_step_lb;
          Printf.sprintf "%.1f" r.naive_sum_lb;
          Printf.sprintf "%.0f" r.composite_upper_rb;
          Printf.sprintf "%.1fx" r.separation;
          opt r.rbw_measured_ub;
          opt r.rbw_lb;
        ])
    rows;
  t

let table ?ns ?measure_limit () = table_of_rows (sweep ?ns ?measure_limit ())

(* ------------------------------------------------------------------ *)
(* Experiment parts: one per problem size [n]. *)

module J = Dmc_util.Json
module P = Experiment.P

let row_to_json r =
  J.Obj
    [
      ("n", J.Int r.n);
      ("s", J.Int r.s);
      ("matmul_step_lb", J.Float r.matmul_step_lb);
      ("naive_sum_lb", J.Float r.naive_sum_lb);
      ("composite_upper_rb", J.Float r.composite_upper_rb);
      ("separation", J.Float r.separation);
      ("rbw_measured_ub", P.of_int_opt r.rbw_measured_ub);
      ("rbw_lb", P.of_int_opt r.rbw_lb);
    ]

let row_of_json p =
  {
    n = P.int p "n";
    s = P.int p "s";
    matmul_step_lb = P.float p "matmul_step_lb";
    naive_sum_lb = P.float p "naive_sum_lb";
    composite_upper_rb = P.float p "composite_upper_rb";
    separation = P.float p "separation";
    rbw_measured_ub = P.int_opt p "rbw_measured_ub";
    rbw_lb = P.int_opt p "rbw_lb";
  }

let parts =
  List.map
    (fun n ->
      {
        Experiment.part = Printf.sprintf "n%d" n;
        run = (fun () -> row_to_json (row_for n));
      })
    default_ns

let doc_of_parts payloads =
  let rows = List.map row_of_json payloads in
  let growing = List.for_all (fun r -> r.n <= 8 || r.separation > 1.0) rows in
  let sandwiched =
    List.for_all
      (fun r ->
        match (r.rbw_lb, r.rbw_measured_ub) with
        | Some lb, Some ub -> lb <= ub
        | _ -> true)
      rows
  in
  {
    Doc.name = "sec3";
    blocks =
      [
        Doc.Section
          "Section 3 composite example: naive per-step bound summation vs reality";
        Doc.Table (table_of_rows rows);
        Doc.check "naive summation overshoots the composite cost for large n"
          growing;
        Doc.check "certified RBW LB <= measured RBW UB on the real CDAG"
          sandwiched;
      ];
  }
