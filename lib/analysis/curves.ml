module Table = Dmc_util.Table

type point = { s : int; lb : float; ub : int }

type curve = {
  workload : string;
  shape : string;
  points : point list;
}

let matmul_curve ?(n = 12) ~ss () =
  let mm = Dmc_gen.Linalg.matmul_indexed n in
  {
    workload = Printf.sprintf "matmul %dx%d" n n;
    shape = "~ n^3 / sqrt S";
    points =
      List.map
        (fun s ->
          let block = max 1 (int_of_float (sqrt (float_of_int s /. 3.0))) in
          let order = Dmc_gen.Linalg.blocked_matmul_order mm ~block in
          {
            s;
            lb = Dmc_core.Analytic.matmul_lb ~n ~s;
            ub = Dmc_core.Strategy.io ~order mm.Dmc_gen.Linalg.mm_graph ~s;
          })
        ss;
  }

let jacobi_curve ?(n = 96) ?(steps = 24) ~ss () =
  let st = Dmc_gen.Stencil.jacobi_1d ~n ~steps in
  {
    workload = Printf.sprintf "jacobi1d %dx%d" n steps;
    shape = "~ n T / S";
    points =
      List.map
        (fun s ->
          let tile = max 2 (s / 3) in
          let order = Dmc_gen.Stencil.skewed_order st ~tile in
          {
            s;
            lb = Dmc_core.Analytic.jacobi_lb ~d:1 ~n ~steps ~s ~p:1;
            ub = Dmc_core.Strategy.io ~order st.Dmc_gen.Stencil.graph ~s;
          })
        ss;
  }

let fft_curve ?(k = 8) ~ss () =
  let g = Dmc_gen.Fft.butterfly k in
  {
    workload = Printf.sprintf "fft %d" (1 lsl k);
    shape = "~ n log n / log S";
    points =
      List.map
        (fun s ->
          let group_bits =
            max 1 (int_of_float (log (float_of_int s /. 2.0) /. log 2.0))
          in
          let order = Dmc_gen.Fft.blocked_order ~k ~group_bits in
          {
            s;
            lb = Dmc_core.Analytic.fft_lb ~n:(1 lsl k) ~s;
            ub = Dmc_core.Strategy.io ~order g ~s;
          })
        ss;
  }

let table c =
  let t = Table.create ~headers:[ "S"; "analytic LB"; "measured UB"; "UB/LB" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.s;
          Printf.sprintf "%.0f" p.lb;
          string_of_int p.ub;
          Printf.sprintf "%.1fx" (float_of_int p.ub /. p.lb);
        ])
    c.points;
  t

(* ------------------------------------------------------------------ *)
(* Experiment parts: one per curve. *)

module J = Dmc_util.Json
module P = Experiment.P

let curve_ok c =
  (* pointwise sandwich *)
  List.for_all (fun p -> p.lb <= float_of_int p.ub) c.points
  (* both series decay with S (allowing 10% measurement wiggle) *)
  && (let rec decays = function
        | a :: (b :: _ as rest) ->
            float_of_int b.ub <= 1.1 *. float_of_int a.ub && b.lb <= a.lb
            && decays rest
        | _ -> true
      in
      decays c.points)
  (* the ratio stays bounded: the schedule tracks the bound's shape *)
  &&
  let ratios = List.map (fun p -> float_of_int p.ub /. p.lb) c.points in
  let rmin = List.fold_left Float.min (List.hd ratios) ratios in
  let rmax = List.fold_left Float.max (List.hd ratios) ratios in
  rmax /. rmin <= 3.0

let curve_to_json c =
  J.Obj
    [
      ("workload", J.String c.workload);
      ("shape", J.String c.shape);
      ( "points",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [ ("s", J.Int p.s); ("lb", J.Float p.lb); ("ub", J.Int p.ub) ])
             c.points) );
    ]

let curve_of_json p =
  {
    workload = P.str p "workload";
    shape = P.str p "shape";
    points =
      List.map
        (fun pt ->
          { s = P.int pt "s"; lb = P.float pt "lb"; ub = P.int pt "ub" })
        (P.objs p "points");
  }

let parts =
  [
    {
      Experiment.part = "matmul";
      run = (fun () -> curve_to_json (matmul_curve ~ss:[ 12; 27; 48; 75; 108 ] ()));
    };
    {
      Experiment.part = "jacobi1d";
      run = (fun () -> curve_to_json (jacobi_curve ~ss:[ 9; 18; 36; 72 ] ()));
    };
    {
      Experiment.part = "fft";
      run = (fun () -> curve_to_json (fft_curve ~ss:[ 10; 18; 34; 66 ] ()));
    };
  ]

let doc_of_parts payloads =
  let curves = List.map curve_of_json payloads in
  let ok = List.for_all curve_ok curves in
  {
    Doc.name = "curves";
    blocks =
      (* this section's banner has no trailing blank line, so it is a
         verbatim Text block rather than a Section *)
      Doc.Text "\n== I/O vs fast-memory capacity: the roofline curves ==\n"
      :: List.map
           (fun c ->
             Doc.Curve
               {
                 Doc.curve = c.workload;
                 shape = c.shape;
                 xlabel = "S";
                 points =
                   List.map
                     (fun p -> { Doc.x = p.s; lb = p.lb; ub = p.ub })
                     c.points;
               })
           curves
      @ [
          Doc.Text "\n";
          Doc.check
            "LB <= UB pointwise, both decay with S, ratio bounded (shape match)"
            ok;
        ];
  }
