(* The experiment registry.  Every experiment is an {!Experiment.t} —
   a list of serializable parts plus a pure document assembler — built
   by its own analysis module; this file only lists them in the
   canonical order and provides the print-and-check driver the CLI and
   the bench harness use. *)

let experiments : Experiment.t list =
  [
    {
      name = "summary";
      parts = Summary.parts;
      doc_of_parts = Summary.doc_of_parts;
    };
    { name = "table1"; parts = Table1.parts; doc_of_parts = Table1.doc_of_parts };
    { name = "sec3"; parts = Sec3.parts; doc_of_parts = Sec3.doc_of_parts };
    {
      name = "cg";
      parts = Cg_analysis.parts;
      doc_of_parts = Cg_analysis.doc_of_parts;
    };
    {
      name = "gmres";
      parts = Gmres_analysis.parts;
      doc_of_parts = Gmres_analysis.doc_of_parts;
    };
    {
      name = "jacobi";
      parts = Jacobi_analysis.parts;
      doc_of_parts = Jacobi_analysis.doc_of_parts;
    };
    { name = "scaling"; parts = Scaling.parts; doc_of_parts = Scaling.doc_of_parts };
    {
      name = "fft";
      parts = Fft_analysis.parts;
      doc_of_parts = Fft_analysis.doc_of_parts;
    };
    { name = "curves"; parts = Curves.parts; doc_of_parts = Curves.doc_of_parts };
    {
      name = "multigrid";
      parts = Multigrid_analysis.parts;
      doc_of_parts = Multigrid_analysis.doc_of_parts;
    };
    {
      name = "reductions";
      parts = Reductions.parts;
      doc_of_parts = Reductions.doc_of_parts;
    };
    {
      name = "tradeoff";
      parts = Tradeoff.parts;
      doc_of_parts = Tradeoff.doc_of_parts;
    };
    {
      name = "symscale";
      parts = Symscale.parts;
      doc_of_parts = Symscale.doc_of_parts;
    };
    {
      name = "validate";
      parts = Validate.validate_parts;
      doc_of_parts = Validate.validate_doc_of_parts;
    };
    {
      name = "sim";
      parts = Validate.sim_parts;
      doc_of_parts = Validate.sim_doc_of_parts;
    };
  ]

let find name = List.find_opt (fun (e : Experiment.t) -> e.name = name) experiments

let run_and_print (e : Experiment.t) =
  let doc = Experiment.doc e in
  print_string (Doc.to_text doc);
  Doc.ok doc

let names =
  List.map
    (fun (e : Experiment.t) -> (e.Experiment.name, fun () -> run_and_print e))
    experiments

let all () = List.fold_left (fun acc (_, f) -> f () && acc) true names
