module Cdag := Dmc_cdag.Cdag
module Rng := Dmc_util.Rng

(** Random CDAGs for property-based testing and for the validation
    experiments that compare the lower-bound engines against the
    exhaustively optimal pebble game. *)

val layered :
  Rng.t -> layers:int -> width:int -> edge_prob:float -> Cdag.t
(** A DAG of [layers] rows of up to [width] vertices; each vertex at
    layer [l+1] gets an edge from each layer-[l] vertex independently
    with probability [edge_prob], plus one forced edge so no compute
    vertex is an accidental source.  Hong–Kung tagging (sources are
    inputs, sinks outputs). *)

val gnp : Rng.t -> n:int -> edge_prob:float -> Cdag.t
(** A DAG over [n] vertices where each forward pair [(i, j)], [i < j],
    is an edge independently with probability [edge_prob]. *)

val connected_dag : Rng.t -> n:int -> extra_edges:int -> Cdag.t
(** A random arborescence over [n] vertices (so the DAG is connected as
    an undirected graph) plus [extra_edges] random forward edges. *)

val daggen :
  Rng.t -> n:int -> fat:float -> density:float -> ccr:int -> Cdag.t
(** A daggen-style random task graph on exactly [n] vertices.  [fat]
    (in [0, 1]) trades width for depth: the mean layer width is
    [fat * 2 * sqrt n], uniformly perturbed per layer.  [density]
    (in [0, 1]) is the parent-edge probability within reach.  [ccr]
    (0-3, daggen's task-class knob, adapted to unit-weight CDAGs) is
    the level-jump reach: parents may come from up to [1 + ccr] levels
    back, with probability decaying in the distance.  Every non-first
    layer vertex gets at least one parent from the previous layer;
    Hong–Kung tagging as in {!layered}. *)
