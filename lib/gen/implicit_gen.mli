(** Implicit (never-materialized) forms of the regular generators.

    Each function here describes the same CDAG as its namesake in
    {!Shapes}, {!Fft}, {!Linalg} or {!Stencil} — identical vertex ids,
    edges, input/output tagging and labels — but as a
    {!Dmc_cdag.Implicit.t} whose adjacency is pure index arithmetic.
    Construction is O(1) (plus O(log n) tables for the reduction tree),
    so sizes far beyond what a frozen CSR can hold (n = 10^9 and up)
    cost nothing until a consumer actually walks or windows the graph.

    All generators are id-monotone: every edge goes from a lower id to
    a higher one, and iterators emit neighbors in ascending id order —
    the contract streaming consumers and {!Dmc_cdag.Implicit.window}
    rely on.  Sizes that would overflow the OCaml integer range raise
    [Invalid_argument]. *)

val chain : int -> Dmc_cdag.Implicit.t
(** Same graph as [Shapes.chain]. *)

val reduction_tree : int -> Dmc_cdag.Implicit.t
(** Same graph as [Shapes.reduction_tree] (pairwise reduction with odd
    carry-over); per-level id tables are O(log leaves). *)

val diamond : rows:int -> cols:int -> Dmc_cdag.Implicit.t
(** Same graph as [Shapes.diamond]. *)

val butterfly : int -> Dmc_cdag.Implicit.t
(** Same graph as [Fft.butterfly], without its materialization-driven
    [k <= 24] cap (any [k <= 55] is accepted). *)

val jacobi :
  ?shape:Stencil.shape ->
  dims:int list ->
  steps:int ->
  unit ->
  Dmc_cdag.Implicit.t
(** Same graph as [Stencil.jacobi] (default shape [Star]). *)

val jacobi_1d : n:int -> steps:int -> Dmc_cdag.Implicit.t

val jacobi_2d : n:int -> steps:int -> Dmc_cdag.Implicit.t
(** Box (9-point) neighborhood, matching [Stencil.jacobi_2d]'s default. *)

val jacobi_3d : n:int -> steps:int -> Dmc_cdag.Implicit.t

val matmul : int -> Dmc_cdag.Implicit.t
(** Same graph as [Linalg.matmul]: A and B entries, then per-(i,j)
    multiply/accumulate chains of 2n-1 vertices. *)
