(** First-class registry of the named CDAG generators.

    Every generator the toolkit knows about — the paper's kernels
    (matmul, FFT, stencils, solvers) plus the synthetic shapes — is one
    {!t}: a name, a positional integer-parameter schema, a one-line doc
    string and a builder.  The CLI ([dmc gen/bounds/game]), the fuzzer
    and the experiment suite all resolve workloads through this table,
    so adding a generator here makes it reachable everywhere. *)

type t = {
  name : string;
  params : string list;  (** positional parameter names, e.g. [["N"; "T"]] *)
  doc : string;          (** one-line description for listings *)
  build : int list -> Dmc_cdag.Cdag.t;
      (** partial: only defined for [List.length params] arguments —
          call through {!build} for arity checking *)
}

val all : t list
(** The registry, in documentation order. *)

val names : string list

val find : string -> t option

val signature : t -> string
(** ["name:P1,P2"] — the spec syntax for this workload. *)

val spec_doc : unit -> string
(** The one-line CLI help string listing every workload signature. *)

val build : string -> int list -> (Dmc_cdag.Cdag.t, string) result
(** Arity-checked build.  Errors name the expected signature, or list
    the known generators when the name is unknown. *)

val parse : string -> (Dmc_cdag.Cdag.t, string) result
(** Parse a ["name:1,2"] spec and build it.  Non-integer parameters,
    unknown names and arity mismatches all produce messages that state
    the expected signature. *)

val build_exn : string -> int list -> Dmc_cdag.Cdag.t
(** {!build}, raising [Failure] on error. *)

val parse_exn : string -> Dmc_cdag.Cdag.t
(** {!parse}, raising [Failure] on error. *)
