(** First-class registry of the named CDAG generators.

    Every generator the toolkit knows about — the paper's kernels
    (matmul, FFT, stencils, solvers) plus the synthetic shapes — is one
    {!t}: a name, a positional integer-parameter schema, a one-line doc
    string and a builder.  The CLI ([dmc gen/bounds/game]), the fuzzer
    and the experiment suite all resolve workloads through this table,
    so adding a generator here makes it reachable everywhere. *)

type t = {
  name : string;
  params : string list;  (** positional parameter names, e.g. [["N"; "T"]] *)
  doc : string;          (** one-line description for listings *)
  build : int list -> Dmc_cdag.Cdag.t;
      (** partial: only defined for [List.length params] arguments —
          call through {!build} for arity checking *)
}

val all : t list
(** The registry, in documentation order. *)

val names : string list

val find : string -> t option

val signature : t -> string
(** ["name:P1,P2"] — the spec syntax for this workload. *)

val spec_doc : unit -> string
(** The one-line CLI help string listing every workload signature. *)

val build : string -> int list -> (Dmc_cdag.Cdag.t, string) result
(** Arity-checked build.  Errors name the expected signature, or list
    the known generators when the name is unknown. *)

val parse : string -> (Dmc_cdag.Cdag.t, string) result
(** Parse a ["name:1,2"] spec and build it.  Non-integer parameters,
    unknown names and arity mismatches all produce messages that state
    the expected signature. *)

val build_exn : string -> int list -> Dmc_cdag.Cdag.t
(** {!build}, raising [Failure] on error. *)

val parse_exn : string -> Dmc_cdag.Cdag.t
(** {!parse}, raising [Failure] on error. *)

(** {1 Implicit registry}

    The regular generator families are also available in implicit form
    (see {!Implicit_gen}): same specs, same graphs, no materialization.
    Trailing parameters may be omitted when the entry declares
    defaults — e.g. ["jacobi1d:1000000000"] means T = 8 — so
    billion-point specs read naturally on the CLI. *)

type implicit_w = {
  iname : string;
  iparams : string list;
  idefaults : int list;
      (** defaults for a suffix of [iparams]; omitted trailing
          arguments are filled from here *)
  idoc : string;
  ibuild : int list -> Dmc_cdag.Implicit.t;  (** full-arity only *)
}

val implicit_all : implicit_w list

val implicit_names : string list

val find_implicit : string -> implicit_w option

val implicit_signature : implicit_w -> string

val build_implicit : string -> int list -> (Dmc_cdag.Implicit.t, string) result
(** Arity-checked build with trailing-default padding; generator size
    errors ([Invalid_argument]) are returned as [Error]. *)

val parse_implicit : string -> (Dmc_cdag.Implicit.t, string) result
(** Parse a ["name:1,2"] spec against the implicit registry. *)
