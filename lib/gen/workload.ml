type t = {
  name : string;
  params : string list;
  doc : string;
  build : int list -> Dmc_cdag.Cdag.t;
}

(* Registry order is the order the CLI documents the shapes in; keep
   new entries grouped with their family. *)
let all =
  [
    {
      name = "chain";
      params = [ "N" ];
      doc = "linear chain of N dependent operations";
      build = (function [ n ] -> Shapes.chain n | _ -> assert false);
    };
    {
      name = "tree";
      params = [ "N" ];
      doc = "binary reduction tree over N leaves";
      build = (function [ n ] -> Shapes.reduction_tree n | _ -> assert false);
    };
    {
      name = "diamond";
      params = [ "R"; "C" ];
      doc = "R-by-C diamond lattice (fan-out then fan-in)";
      build =
        (function [ r; c ] -> Shapes.diamond ~rows:r ~cols:c | _ -> assert false);
    };
    {
      name = "fft";
      params = [ "K" ];
      doc = "radix-2 FFT butterfly network on 2^K inputs";
      build = (function [ k ] -> Fft.butterfly k | _ -> assert false);
    };
    {
      name = "bitonic";
      params = [ "K" ];
      doc = "bitonic sorting network on 2^K inputs";
      build = (function [ k ] -> Fft.bitonic_sort k | _ -> assert false);
    };
    {
      name = "pyramid";
      params = [ "H" ];
      doc = "2-D pyramid DAG of height H";
      build = (function [ h ] -> Shapes.pyramid h | _ -> assert false);
    };
    {
      name = "binomial";
      params = [ "K" ];
      doc = "binomial-coefficient DAG of order K";
      build = (function [ k ] -> Shapes.binomial k | _ -> assert false);
    };
    {
      name = "matmul";
      params = [ "N" ];
      doc = "classic N^3 dense matrix-multiply DAG";
      build = (function [ n ] -> Linalg.matmul n | _ -> assert false);
    };
    {
      name = "lu";
      params = [ "N" ];
      doc = "LU factorization (no pivoting) of an N-by-N matrix";
      build = (function [ n ] -> (Linalg.lu_factor n).lu_graph | _ -> assert false);
    };
    {
      name = "cholesky";
      params = [ "N" ];
      doc = "Cholesky factorization of an N-by-N matrix";
      build = (function [ n ] -> Linalg.cholesky n | _ -> assert false);
    };
    {
      name = "outer";
      params = [ "N" ];
      doc = "rank-1 outer product of two N-vectors";
      build = (function [ n ] -> Linalg.outer_product n | _ -> assert false);
    };
    {
      name = "dot";
      params = [ "N" ];
      doc = "dot product of two N-vectors";
      build = (function [ n ] -> Linalg.dot_product n | _ -> assert false);
    };
    {
      name = "composite";
      params = [ "N" ];
      doc = "matmul feeding a reduction (Lemma 4 composition)";
      build = (function [ n ] -> (Linalg.composite n).graph | _ -> assert false);
    };
    {
      name = "jacobi1d";
      params = [ "N"; "T" ];
      doc = "1-D 3-point Jacobi stencil, N points, T time steps";
      build =
        (function
         | [ n; t ] -> (Stencil.jacobi_1d ~n ~steps:t).graph | _ -> assert false);
    };
    {
      name = "jacobi2d";
      params = [ "N"; "T" ];
      doc = "2-D 5-point Jacobi stencil, N^2 points, T time steps";
      build =
        (function
         | [ n; t ] -> (Stencil.jacobi_2d ~n ~steps:t ()).graph
         | _ -> assert false);
    };
    {
      name = "jacobi3d";
      params = [ "N"; "T" ];
      doc = "3-D 7-point Jacobi stencil, N^3 points, T time steps";
      build =
        (function
         | [ n; t ] -> (Stencil.jacobi_3d ~n ~steps:t).graph | _ -> assert false);
    };
    {
      name = "spmv";
      params = [ "N"; "D" ];
      doc = "sparse matrix-vector product on a D-dim grid of side N";
      build =
        (function
         | [ n; d ] -> Solver.spmv ~dims:(List.init d (fun _ -> n))
         | _ -> assert false);
    };
    {
      name = "thomas";
      params = [ "N" ];
      doc = "Thomas tridiagonal solve of size N";
      build = (function [ n ] -> (Solver.thomas ~n).th_graph | _ -> assert false);
    };
    {
      name = "multigrid";
      params = [ "N"; "L"; "C" ];
      doc = "multigrid V-cycles: side N, L levels, C cycles";
      build =
        (function
         | [ n; levels; cycles ] ->
             (Multigrid.v_cycle ~dims:[ n ] ~levels ~cycles ()).graph
         | _ -> assert false);
    };
    {
      name = "cg";
      params = [ "N"; "D"; "T" ];
      doc = "conjugate gradient on a D-dim grid of side N, T iterations";
      build =
        (function
         | [ n; d; t ] ->
             (Solver.cg ~dims:(List.init d (fun _ -> n)) ~iters:t).graph
         | _ -> assert false);
    };
    {
      name = "gmres";
      params = [ "N"; "D"; "M" ];
      doc = "GMRES on a D-dim grid of side N, restart length M";
      build =
        (function
         | [ n; d; m ] ->
             (Solver.gmres ~dims:(List.init d (fun _ -> n)) ~iters:m).graph
         | _ -> assert false);
    };
    {
      name = "daggen";
      params = [ "SEED"; "N"; "FAT"; "DENS"; "CCR" ];
      doc =
        "daggen-style random task graph: N tasks, FAT/DENS in percent, \
         CCR 0-3 level-jump reach";
      build =
        (function
         | [ seed; n; fat; dens; ccr ] ->
             Random_dag.daggen (Dmc_util.Rng.create seed) ~n
               ~fat:(float_of_int fat /. 100.0)
               ~density:(float_of_int dens /. 100.0)
               ~ccr
         | _ -> assert false);
    };
    {
      name = "layered";
      params = [ "SEED"; "L"; "W" ];
      doc = "random layered DAG: L layers of width W, seeded";
      build =
        (function
         | [ seed; l; w ] ->
             Random_dag.layered (Dmc_util.Rng.create seed) ~layers:l ~width:w
               ~edge_prob:0.4
         | _ -> assert false);
    };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let names = List.map (fun w -> w.name) all

let signature w = w.name ^ ":" ^ String.concat "," w.params

let spec_doc () =
  "Named generator: " ^ String.concat ", " (List.map signature all)

let build name args =
  match find name with
  | None ->
      Error
        (Printf.sprintf "unknown generator '%s'; known generators: %s" name
           (String.concat ", " names))
  | Some w ->
      let want = List.length w.params and got = List.length args in
      if want <> got then
        Error
          (Printf.sprintf
             "generator '%s' expects %d parameter%s (%s), got %d" name want
             (if want = 1 then "" else "s")
             (signature w) got)
      else Ok (w.build args)

let parse spec =
  let name, raw_args =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let rec ints acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> (
        match int_of_string_opt a with
        | Some n -> ints (n :: acc) rest
        | None ->
            Error
              (Printf.sprintf
                 "generator '%s': parameter '%s' is not an integer (want %s)"
                 name a
                 (match find name with
                 | Some w -> signature w
                 | None -> "NAME:INT,...")))
  in
  match ints [] raw_args with
  | Error _ as e -> e
  | Ok args -> build name args

let build_exn name args =
  match build name args with Ok g -> g | Error msg -> failwith msg

let parse_exn spec =
  match parse spec with Ok g -> g | Error msg -> failwith msg

(* -- implicit registry ------------------------------------------- *)

type implicit_w = {
  iname : string;
  iparams : string list;
  idefaults : int list;
  idoc : string;
  ibuild : int list -> Dmc_cdag.Implicit.t;
}

let implicit_all =
  [
    {
      iname = "chain";
      iparams = [ "N" ];
      idefaults = [];
      idoc = "linear chain of N dependent operations";
      ibuild = (function [ n ] -> Implicit_gen.chain n | _ -> assert false);
    };
    {
      iname = "tree";
      iparams = [ "N" ];
      idefaults = [];
      idoc = "binary reduction tree over N leaves";
      ibuild =
        (function [ n ] -> Implicit_gen.reduction_tree n | _ -> assert false);
    };
    {
      iname = "diamond";
      iparams = [ "R"; "C" ];
      idefaults = [];
      idoc = "R-by-C diamond lattice (fan-out then fan-in)";
      ibuild =
        (function
         | [ r; c ] -> Implicit_gen.diamond ~rows:r ~cols:c | _ -> assert false);
    };
    {
      iname = "fft";
      iparams = [ "K" ];
      idefaults = [];
      idoc = "radix-2 FFT butterfly network on 2^K inputs";
      ibuild = (function [ k ] -> Implicit_gen.butterfly k | _ -> assert false);
    };
    {
      iname = "matmul";
      iparams = [ "N" ];
      idefaults = [];
      idoc = "classic N^3 dense matrix-multiply DAG";
      ibuild = (function [ n ] -> Implicit_gen.matmul n | _ -> assert false);
    };
    {
      iname = "jacobi1d";
      iparams = [ "N"; "T" ];
      idefaults = [ 8 ];
      idoc = "1-D 3-point Jacobi stencil, N points, T time steps (default 8)";
      ibuild =
        (function
         | [ n; t ] -> Implicit_gen.jacobi_1d ~n ~steps:t | _ -> assert false);
    };
    {
      iname = "jacobi2d";
      iparams = [ "N"; "T" ];
      idefaults = [ 4 ];
      idoc = "2-D 9-point Jacobi stencil, N^2 points, T time steps (default 4)";
      ibuild =
        (function
         | [ n; t ] -> Implicit_gen.jacobi_2d ~n ~steps:t | _ -> assert false);
    };
    {
      iname = "jacobi3d";
      iparams = [ "N"; "T" ];
      idefaults = [ 2 ];
      idoc = "3-D 7-point Jacobi stencil, N^3 points, T time steps (default 2)";
      ibuild =
        (function
         | [ n; t ] -> Implicit_gen.jacobi_3d ~n ~steps:t | _ -> assert false);
    };
  ]

let find_implicit name = List.find_opt (fun w -> w.iname = name) implicit_all

let implicit_names = List.map (fun w -> w.iname) implicit_all

let implicit_signature w = w.iname ^ ":" ^ String.concat "," w.iparams

let build_implicit name args =
  match find_implicit name with
  | None ->
      Error
        (Printf.sprintf
           "unknown implicit generator '%s'; known implicit generators: %s"
           name
           (String.concat ", " implicit_names))
  | Some w ->
      let want = List.length w.iparams
      and ndef = List.length w.idefaults
      and got = List.length args in
      if got > want || got < want - ndef then
        Error
          (Printf.sprintf
             "implicit generator '%s' expects %d-%d parameters (%s), got %d"
             name (want - ndef) want (implicit_signature w) got)
      else
        (* pad missing trailing parameters from the defaults suffix *)
        let missing = want - got in
        let pad =
          let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
          drop (ndef - missing) w.idefaults
        in
        (try Ok (w.ibuild (args @ pad))
         with Invalid_argument msg -> Error msg)

let parse_implicit spec =
  let name, raw_args =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let rec ints acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> (
        match int_of_string_opt a with
        | Some n -> ints (n :: acc) rest
        | None ->
            Error
              (Printf.sprintf
                 "implicit generator '%s': parameter '%s' is not an integer"
                 name a))
  in
  match ints [] raw_args with
  | Error _ as e -> e
  | Ok args -> build_implicit name args
