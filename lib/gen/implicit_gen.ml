module Implicit = Dmc_cdag.Implicit

(* Every generator here mirrors its materialized counterpart exactly:
   same vertex ids (creation order), same edges, same input/output
   tagging, same labels.  The equivalence suite in test_implicit.ml
   checks this at several sizes, which is what licenses swapping the
   implicit form in wherever a materialized graph used to be.

   All generators are id-monotone (edges go low id -> high id) and all
   iterators emit neighbors in ascending id order, matching the frozen
   CSR rows. *)

let checked_mul what a b =
  if a > 0 && b > 0 && a > max_int / b then
    invalid_arg (what ^ ": size overflows the integer range");
  a * b

(* -- chain ------------------------------------------------------- *)

let chain n =
  if n <= 0 then invalid_arg "Implicit_gen.chain";
  {
    Implicit.n_vertices = n;
    iter_succ = (fun v f -> if v < n - 1 then f (v + 1));
    iter_pred = (fun v f -> if v > 0 then f (v - 1));
    is_input = (fun v -> v = 0);
    is_output = (fun v -> v = n - 1);
    label = (fun v -> Printf.sprintf "c%d" v);
  }

(* -- binary reduction tree --------------------------------------- *)

(* Shapes.reduction_tree pairs up each level left to right; an odd
   trailing vertex is carried to the next level unchanged.  New ids are
   assigned level by level, so the whole id scheme is described by
   three O(log leaves) tables: live positions, fresh vertices and the
   first fresh id per level. *)
let reduction_tree leaves =
  if leaves <= 0 then invalid_arg "Implicit_gen.reduction_tree";
  let rev_sizes = ref [ leaves ] in
  let cur = ref leaves in
  while !cur > 1 do
    cur := (!cur + 1) / 2;
    rev_sizes := !cur :: !rev_sizes
  done;
  let sizes = Array.of_list (List.rev !rev_sizes) in
  let nlev = Array.length sizes in
  let news =
    Array.init nlev (fun l -> if l = 0 then leaves else sizes.(l - 1) / 2)
  in
  let bases = Array.make nlev 0 in
  for l = 1 to nlev - 1 do
    bases.(l) <- bases.(l - 1) + news.(l - 1)
  done;
  let total = bases.(nlev - 1) + news.(nlev - 1) in
  (* id of the vertex occupying position [pos] of level [l] (resolving
     carried positions down to their creation level) *)
  let rec id_at l pos =
    if l = 0 then pos
    else if pos < news.(l) then bases.(l) + pos
    else id_at (l - 1) (sizes.(l - 1) - 1)
  in
  (* creation level of id [v]: largest l with bases.(l) <= v *)
  let level_of v =
    let lo = ref 0 and hi = ref (nlev - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if bases.(mid) <= v then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let iter_pred v f =
    let l = level_of v in
    if l > 0 then begin
      let pos = v - bases.(l) in
      let c1 = id_at (l - 1) (2 * pos) and c2 = id_at (l - 1) ((2 * pos) + 1) in
      (* a carried right child has a smaller id than the fresh left one *)
      f (min c1 c2);
      f (max c1 c2)
    end
  in
  let iter_succ v f =
    let rec go l pos =
      if sizes.(l) > 1 then
        if pos lor 1 < sizes.(l) then f (bases.(l + 1) + (pos / 2))
        else go (l + 1) (sizes.(l + 1) - 1)
    in
    let l = level_of v in
    go l (v - bases.(l))
  in
  {
    Implicit.n_vertices = total;
    iter_succ;
    iter_pred;
    is_input = (fun v -> v < leaves);
    is_output = (fun v -> v = total - 1);
    label =
      (fun v ->
        if v < leaves then Printf.sprintf "in%d" v else "v" ^ string_of_int v);
  }

(* -- diamond lattice --------------------------------------------- *)

let diamond ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Implicit_gen.diamond";
  let n = checked_mul "Implicit_gen.diamond" rows cols in
  {
    Implicit.n_vertices = n;
    iter_succ =
      (fun v f ->
        let j = v mod cols in
        if j < cols - 1 then f (v + 1);
        if v + cols < n then f (v + cols));
    iter_pred =
      (fun v f ->
        let j = v mod cols in
        if v >= cols then f (v - cols);
        if j > 0 then f (v - 1));
    is_input = (fun v -> v = 0);
    is_output = (fun v -> v = n - 1);
    label = (fun v -> Printf.sprintf "d%d_%d" (v / cols) (v mod cols));
  }

(* -- FFT butterfly ----------------------------------------------- *)

let butterfly k =
  if k < 0 || k > 55 then invalid_arg "Implicit_gen.butterfly: size out of range";
  let n = 1 lsl k in
  let total = checked_mul "Implicit_gen.butterfly" (k + 1) n in
  {
    Implicit.n_vertices = total;
    iter_succ =
      (fun v f ->
        let rank = v / n and i = v mod n in
        if rank < k then begin
          let j = i lxor (1 lsl rank) in
          let base = (rank + 1) * n in
          f (base + min i j);
          f (base + max i j)
        end);
    iter_pred =
      (fun v f ->
        let rank = v / n and i = v mod n in
        if rank > 0 then begin
          let j = i lxor (1 lsl (rank - 1)) in
          let base = (rank - 1) * n in
          f (base + min i j);
          f (base + max i j)
        end);
    is_input = (fun v -> v < n);
    is_output = (fun v -> v >= k * n);
    label = (fun v -> Printf.sprintf "f[r%d,%d]" (v / n) (v mod n));
  }

(* -- Jacobi stencils --------------------------------------------- *)

let jacobi ?(shape = Stencil.Star) ~dims ~steps () =
  if steps < 1 then invalid_arg "Implicit_gen.jacobi: steps must be >= 1";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Implicit_gen.jacobi: non-positive dim")
    dims;
  let npts =
    List.fold_left (fun acc d -> checked_mul "Implicit_gen.jacobi" acc d) 1 dims
  in
  let total = checked_mul "Implicit_gen.jacobi" (steps + 1) npts in
  let grid = Grid.create dims in
  let neighbors =
    match shape with
    | Stencil.Star -> Grid.star_neighbors grid
    | Stencil.Box -> Grid.box_neighbors grid
  in
  (* spatial footprint of point [i], ascending: i merged into its
     (already sorted) neighbor list *)
  let footprint i = List.merge compare [ i ] (neighbors i) in
  {
    Implicit.n_vertices = total;
    iter_succ =
      (fun v f ->
        let t = v / npts and i = v mod npts in
        if t < steps then begin
          let base = (t + 1) * npts in
          List.iter (fun j -> f (base + j)) (footprint i)
        end);
    iter_pred =
      (fun v f ->
        let t = v / npts and i = v mod npts in
        if t > 0 then begin
          let base = (t - 1) * npts in
          List.iter (fun j -> f (base + j)) (footprint i)
        end);
    is_input = (fun v -> v < npts);
    is_output = (fun v -> v >= steps * npts);
    label = (fun v -> Printf.sprintf "u[t%d,%d]" (v / npts) (v mod npts));
  }

let jacobi_1d ~n ~steps = jacobi ~shape:Stencil.Star ~dims:[ n ] ~steps ()
let jacobi_2d ~n ~steps = jacobi ~shape:Stencil.Box ~dims:[ n; n ] ~steps ()
let jacobi_3d ~n ~steps = jacobi ~shape:Stencil.Star ~dims:[ n; n; n ] ~steps ()

(* -- dense matrix multiply --------------------------------------- *)

(* Linalg.matmul_indexed id layout: the A rows (a(i,k) = i*n + k), the
   B rows (b(k,j) = n^2 + k*n + j), then for each (i,j) pair, in order
   p = i*n + j, a block of 2n-1 vertices starting at 2n^2 + p*(2n-1):
   offset 0 is m(i,j,0), offset 2k-1 is m(i,j,k) and offset 2k is the
   accumulation c(i,j,k) for k >= 1. *)
let matmul n =
  if n <= 0 then invalid_arg "Implicit_gen.matmul";
  if n > 1 lsl 20 then invalid_arg "Implicit_gen.matmul: size out of range";
  let n2 = n * n in
  let pair_w = (2 * n) - 1 in
  let base = 2 * n2 in
  let total = base + (n2 * pair_w) in
  let iter_succ v f =
    if v < n2 then begin
      (* a(i,k) feeds m(i,j,k) for every j *)
      let i = v / n and k = v mod n in
      let off = if k = 0 then 0 else (2 * k) - 1 in
      for j = 0 to n - 1 do
        f (base + (((i * n) + j) * pair_w) + off)
      done
    end
    else if v < base then begin
      (* b(k,j) feeds m(i,j,k) for every i *)
      let r = v - n2 in
      let k = r / n and j = r mod n in
      let off = if k = 0 then 0 else (2 * k) - 1 in
      for i = 0 to n - 1 do
        f (base + (((i * n) + j) * pair_w) + off)
      done
    end
    else begin
      let r = v - base in
      let off = r mod pair_w in
      let pb = v - off in
      if off = 0 then begin
        (* m(i,j,0) starts the chain: feeds c(i,j,1) when n > 1 *)
        if n > 1 then f (pb + 2)
      end
      else if off land 1 = 1 then
        (* m(i,j,k) feeds c(i,j,k) *)
        f (pb + off + 1)
      else if off / 2 < n - 1 then
        (* c(i,j,k) feeds c(i,j,k+1) *)
        f (pb + off + 2)
    end
  in
  let iter_pred v f =
    if v >= base then begin
      let r = v - base in
      let p = r / pair_w and off = r mod pair_w in
      let i = p / n and j = p mod n in
      let pb = v - off in
      if off = 0 || off land 1 = 1 then begin
        let k = if off = 0 then 0 else (off + 1) / 2 in
        f ((i * n) + k);
        f (n2 + (k * n) + j)
      end
      else begin
        let k = off / 2 in
        f (if k = 1 then pb else pb + (2 * (k - 1)));
        f (pb + (2 * k) - 1)
      end
    end
  in
  let label v =
    if v < n2 then Printf.sprintf "a%d_%d" (v / n) (v mod n)
    else if v < base then
      let r = v - n2 in
      Printf.sprintf "b%d_%d" (r / n) (r mod n)
    else
      let r = v - base in
      let p = r / pair_w and off = r mod pair_w in
      let i = p / n and j = p mod n in
      if off = 0 then Printf.sprintf "m%d_%d_0" i j
      else if off land 1 = 1 then Printf.sprintf "m%d_%d_%d" i j ((off + 1) / 2)
      else Printf.sprintf "c%d_%d_%d" i j (off / 2)
  in
  {
    Implicit.n_vertices = total;
    iter_succ;
    iter_pred;
    is_input = (fun v -> v < base);
    is_output = (fun v -> v >= base && (v - base) mod pair_w = pair_w - 1);
    label;
  }
