module Cdag = Dmc_cdag.Cdag
module B = Cdag.Builder
module Rng = Dmc_util.Rng

let layered rng ~layers ~width ~edge_prob =
  if layers <= 0 || width <= 0 then invalid_arg "Random_dag.layered";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Random_dag.layered: probability out of range";
  let b = B.create ~hint:(layers * width) () in
  let rows =
    Array.init layers (fun l ->
        let w = 1 + Rng.int rng width in
        Array.init w (fun i ->
            B.add_vertex ~label:(Printf.sprintf "r%d_%d" l i) b))
  in
  for l = 0 to layers - 2 do
    Array.iter
      (fun dst ->
        let connected = ref false in
        Array.iter
          (fun src ->
            if Rng.float rng 1.0 < edge_prob then begin
              B.add_edge b src dst;
              connected := true
            end)
          rows.(l);
        if not !connected then B.add_edge b (Rng.pick rng rows.(l)) dst)
      rows.(l + 1)
  done;
  B.freeze b

let gnp rng ~n ~edge_prob =
  if n <= 0 then invalid_arg "Random_dag.gnp";
  let b = B.create ~hint:n () in
  let vs = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "g%d" i) b) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < edge_prob then B.add_edge b vs.(i) vs.(j)
    done
  done;
  B.freeze b

let connected_dag rng ~n ~extra_edges =
  if n <= 0 then invalid_arg "Random_dag.connected_dag";
  let b = B.create ~hint:n () in
  let vs = Array.init n (fun i -> B.add_vertex ~label:(Printf.sprintf "t%d" i) b) in
  for j = 1 to n - 1 do
    B.add_edge b vs.(Rng.int rng j) vs.(j)
  done;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra_edges && !attempts < 20 * (extra_edges + 1) do
    incr attempts;
    if n >= 2 then begin
      let i = Rng.int rng (n - 1) in
      let j = i + 1 + Rng.int rng (n - 1 - i) in
      if not (Cdag.Builder.n_vertices b = 0) then begin
        B.add_edge b vs.(i) vs.(j);
        incr added
      end
    end
  done;
  B.freeze b

(* A daggen-style generator (after the daggen task-graph suite): the
   task count [n] is fixed and three knobs shape the graph.  [fat]
   drives width against depth — the mean layer width is
   [fat * 2 * sqrt n], so 0 degenerates towards a chain and 1 towards
   a two-level fan; [density] is the parent-edge probability; [ccr]
   (0-3) is daggen's task-class knob, adapted to unit-weight CDAGs as
   the level-jump reach: a level-[l] vertex may draw parents from
   levels [l - 1 .. l - 1 - ccr], with the edge probability decaying
   with the distance jumped. *)
let daggen rng ~n ~fat ~density ~ccr =
  if n <= 0 then invalid_arg "Random_dag.daggen";
  if fat < 0.0 || fat > 1.0 then
    invalid_arg "Random_dag.daggen: fat out of range";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Random_dag.daggen: density out of range";
  if ccr < 0 || ccr > 3 then invalid_arg "Random_dag.daggen: ccr out of range";
  let b = B.create ~hint:n () in
  let mean_width = Float.max 1.0 (fat *. 2.0 *. sqrt (float_of_int n)) in
  let levels = ref [] and made = ref 0 in
  while !made < n do
    (* daggen perturbs each level's width uniformly around the mean *)
    let w =
      int_of_float (mean_width *. (0.8 +. Rng.float rng 0.4)) |> max 1
      |> min (n - !made)
    in
    let row =
      Array.init w (fun i ->
          B.add_vertex
            ~label:(Printf.sprintf "d%d_%d" (List.length !levels) i)
            b)
    in
    made := !made + w;
    levels := row :: !levels
  done;
  let levels = Array.of_list (List.rev !levels) in
  for l = 1 to Array.length levels - 1 do
    Array.iter
      (fun dst ->
        let connected = ref false in
        for jump = 1 to min l (1 + ccr) do
          let prob = density /. float_of_int jump in
          Array.iter
            (fun src ->
              if Rng.float rng 1.0 < prob then begin
                B.add_edge b src dst;
                connected := true
              end)
            levels.(l - jump)
        done;
        (* one forced parent, so no compute vertex is an accidental
           source — same convention as {!layered} *)
        if not !connected then B.add_edge b (Rng.pick rng levels.(l - 1)) dst)
      levels.(l)
  done;
  B.freeze b
