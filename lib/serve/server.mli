(** The [dmc serve] daemon: a crash-tolerant bound-query service.

    One event loop multiplexes three descriptor families with a single
    [select]: the Unix-domain listen socket, the open client
    connections, and the worker pipes of an embedded unordered
    {!Dmc_runtime.Pool} (via {!Dmc_runtime.Pool.watch_fds} /
    [step ~max_wait:0.]).  Queries are {!Dmc_core.Engine_job}s; their
    rows come back from supervised forked workers, so nothing a bound
    computation does — blow the stack, hang, segfault — can take the
    daemon down.

    Robustness properties, each covered by a test or the CI smoke:
    every connection read runs under a deadline; admission is bounded
    ([Rejected Overloaded] past [max_inflight], nothing computed);
    malformed, oversized, truncated and stalled requests get typed
    {!Protocol.reject} replies, never a crashed daemon or a silent
    close; results are cached content-addressed ({!Cache_key}) in a
    write-through persisted LRU ({!Result_cache}), so a [kill -9]
    loses at most in-flight work; and a drain (SIGTERM, SIGINT or a
    [Shutdown] request) finishes in-flight queries, answers their
    clients, persists the cache and returns — the CLI wrapper turns
    that into exit 143/130.

    Chaos mode: {!Dmc_runtime.Fault} server kinds ([drop], [truncate],
    [slow]) fire by 1-based {e accepted-connection} index, while worker
    kinds pass through to the pool — one [--fault] spec exercises both
    layers. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; created on start *)
  cache_dir : string option;  (** persist the result cache here *)
  cache_entries : int;  (** LRU capacity of the result cache *)
  max_inflight : int;
      (** admission bound: queries submitted to the pool but not yet
          answered; beyond it new queries get [Rejected Overloaded] *)
  read_timeout : float;
      (** per-connection deadline, accept to complete request frame *)
  jobs : int;  (** worker processes for the embedded pool *)
  job_timeout : float option;  (** hard per-attempt compute deadline *)
  max_retries : int;
  faults : Dmc_runtime.Fault.t list;
  should_drain : unit -> bool;
      (** polled every loop iteration; [true] begins a graceful drain
          (the CLI wires this to its SIGTERM/SIGINT flag) *)
  on_ready : (unit -> unit) option;
      (** called once, after the socket is listening *)
}

val default : config
(** [socket_path = "dmc.sock"], no cache dir, 1024 entries, 64
    in-flight, 10 s read timeout, 1 job, no compute timeout, 2
    retries, no faults, never drains. *)

val stats_json : unit -> Dmc_util.Json.t
(** The [Stats] reply payload: every registered counter and gauge, in
    name order — [{"counters": {...}, "gauges": {...}}].  Exposed for
    the tests and for [dmc query --stats] output formatting. *)

val metrics_json : started:float -> unit -> Dmc_util.Json.t
(** The [Metrics] reply payload: [{"uptime_s", "cache": {hits, misses,
    ratio}, "registry": <Export.to_json>, "text":
    <Export.prometheus>}].  [started] is the daemon's
    [Unix.gettimeofday] at startup.  Also refreshes the
    [serve.cache.hit_ratio] gauge so the exposition carries it.
    Per-request latency rides the [serve.lat.*_us] histograms
    (request, queue-wait, engine, cache-lookup), fed by the serve
    loop. *)

val serve : config -> (unit, string) result
(** Run until drained.  [Ok ()] after a graceful drain (in-flight
    queries answered, cache persisted, socket unlinked); [Error] only
    for startup failures — once listening, per-connection and
    per-query failures are typed replies, and the loop survives them
    all. *)
