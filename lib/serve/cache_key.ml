let version = "dmc-serve-cache-v1"

(* The key material is an explicit NUL-separated field list, not a JSON
   rendering: a renderer tweak (float formatting, key order) must never
   silently re-key the whole cache.  NUL cannot appear in any field —
   engine names and workload specs are ASCII identifiers, and the graph
   serialization is line-oriented text — so fields cannot bleed into
   each other. *)
let of_job (j : Dmc_core.Engine_job.t) =
  let graph =
    match Dmc_cdag.Serialize.of_string j.graph with
    | Ok g -> Dmc_cdag.Serialize.to_string g
    | Error _ -> j.graph
  in
  let material =
    String.concat "\x00"
      [
        version;
        j.engine;
        string_of_int j.s;
        (match j.timeout with
        | None -> "-"
        | Some t -> Printf.sprintf "%.17g" t);
        (match j.node_budget with None -> "-" | Some n -> string_of_int n);
        string_of_int j.samples;
        graph;
      ]
  in
  Digest.to_hex (Digest.string material)
