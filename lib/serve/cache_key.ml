let version = "dmc-serve-cache-v1"

(* The key material is an explicit NUL-separated field list, not a JSON
   rendering: a renderer tweak (float formatting, key order) must never
   silently re-key the whole cache.  NUL cannot appear in any field —
   engine names and workload specs are ASCII identifiers, and the graph
   serialization is line-oriented text — so fields cannot bleed into
   each other. *)
(* Spec-sourced queries get their own key space: the digest covers the
   spec string, never the graph, so the lookup costs nothing even when
   the spec names a graph that is expensive (or impossible) to build.
   The distinct version tag keeps the two spaces disjoint — a spec key
   can never collide into an inline-graph entry or vice versa. *)
let spec_version = "dmc-serve-cache-spec-v1"

let of_spec ~engine ~s ~timeout ~node_budget ~samples spec =
  let material =
    String.concat "\x00"
      [
        spec_version;
        engine;
        string_of_int s;
        (match timeout with
        | None -> "-"
        | Some t -> Printf.sprintf "%.17g" t);
        (match node_budget with None -> "-" | Some n -> string_of_int n);
        string_of_int samples;
        String.trim spec;
      ]
  in
  Digest.to_hex (Digest.string material)

let of_job (j : Dmc_core.Engine_job.t) =
  let graph =
    match Dmc_cdag.Serialize.of_string j.graph with
    | Ok g -> Dmc_cdag.Serialize.to_string g
    | Error _ -> j.graph
  in
  let material =
    String.concat "\x00"
      [
        version;
        j.engine;
        string_of_int j.s;
        (match j.timeout with
        | None -> "-"
        | Some t -> Printf.sprintf "%.17g" t);
        (match j.node_budget with None -> "-" | Some n -> string_of_int n);
        string_of_int j.samples;
        graph;
      ]
  in
  Digest.to_hex (Digest.string material)
