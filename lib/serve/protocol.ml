module Json = Dmc_util.Json
module Budget = Dmc_util.Budget

type source = Spec of string | Graph of string

type query = {
  source : source;
  engine : string;
  s : int;
  timeout : float option;
  node_budget : int option;
  samples : int;
}

type request = Ping | Stats | Metrics | Shutdown | Query of query

type reject = Overloaded | Draining | Protocol of string

type reply =
  | Pong
  | Stats_snapshot of Json.t
  | Metrics_snapshot of Json.t
  | Bye
  | Result of { cached : bool; row : Json.t }
  | Failed of Budget.failure
  | Rejected of reject

let query ?timeout ?node_budget ?(samples = 64) source ~engine ~s =
  Query { source; engine; s; timeout; node_budget; samples }

let request_to_json = function
  | Ping -> Json.Obj [ ("req", Json.String "ping") ]
  | Stats -> Json.Obj [ ("req", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("req", Json.String "metrics") ]
  | Shutdown -> Json.Obj [ ("req", Json.String "shutdown") ]
  | Query q ->
      let source =
        match q.source with
        | Spec s -> ("spec", Json.String s)
        | Graph g -> ("graph", Json.String g)
      in
      Json.Obj
        [
          ("req", Json.String "query");
          source;
          ("engine", Json.String q.engine);
          ("s", Json.Int q.s);
          ("timeout", Json.opt (fun t -> Json.Float t) q.timeout);
          ("node_budget", Json.opt (fun n -> Json.Int n) q.node_budget);
          ("samples", Json.Int q.samples);
        ]

let request_of_json json =
  match Json.mem json "req" with
  | Some (Json.String "ping") -> Ok Ping
  | Some (Json.String "stats") -> Ok Stats
  | Some (Json.String "metrics") -> Ok Metrics
  | Some (Json.String "shutdown") -> Ok Shutdown
  | Some (Json.String "query") -> (
      let field name = Json.mem json name in
      let source =
        match (field "spec", field "graph") with
        | Some (Json.String s), None -> Ok (Spec s)
        | None, Some (Json.String g) -> Ok (Graph g)
        | None, None -> Error "query needs one of \"spec\" or \"graph\""
        | _ -> Error "query takes exactly one of \"spec\" or \"graph\""
      in
      match source with
      | Error _ as e -> e
      | Ok source -> (
          match
            ( Option.bind (field "engine") Json.as_string,
              Option.bind (field "s") Json.as_int )
          with
          | Some engine, Some s ->
              Ok
                (Query
                   {
                     source;
                     engine;
                     s;
                     timeout = Option.bind (field "timeout") Json.as_float;
                     node_budget =
                       Option.bind (field "node_budget") Json.as_int;
                     samples =
                       (match Option.bind (field "samples") Json.as_int with
                       | Some n -> n
                       | None -> 64);
                   })
          | None, _ -> Error "query needs a string \"engine\""
          | _, None -> Error "query needs an integer \"s\""))
  | Some (Json.String other) -> Error (Printf.sprintf "unknown request %S" other)
  | Some _ -> Error "\"req\" must be a string"
  | None -> Error "missing \"req\" field"

let reject_token = function
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Protocol _ -> "protocol"

let reply_to_json = function
  | Pong -> Json.Obj [ ("reply", Json.String "pong") ]
  | Stats_snapshot stats ->
      Json.Obj [ ("reply", Json.String "stats"); ("stats", stats) ]
  | Metrics_snapshot m ->
      Json.Obj [ ("reply", Json.String "metrics"); ("metrics", m) ]
  | Bye -> Json.Obj [ ("reply", Json.String "bye") ]
  | Result { cached; row } ->
      Json.Obj
        [
          ("reply", Json.String "result");
          ("cached", Json.Bool cached);
          ("row", row);
        ]
  | Failed f ->
      Json.Obj
        [
          ("reply", Json.String "failed");
          ("failure", Json.String (Budget.failure_to_string f));
        ]
  | Rejected r ->
      Json.Obj
        (("reply", Json.String "rejected")
         :: ("reason", Json.String (reject_token r))
         ::
         (match r with
         | Protocol detail -> [ ("detail", Json.String detail) ]
         | Overloaded | Draining -> []))

let reply_of_json json =
  match Json.mem json "reply" with
  | Some (Json.String "pong") -> Ok Pong
  | Some (Json.String "bye") -> Ok Bye
  | Some (Json.String "stats") -> (
      match Json.mem json "stats" with
      | Some stats -> Ok (Stats_snapshot stats)
      | None -> Error "stats reply without \"stats\"")
  | Some (Json.String "metrics") -> (
      match Json.mem json "metrics" with
      | Some m -> Ok (Metrics_snapshot m)
      | None -> Error "metrics reply without \"metrics\"")
  | Some (Json.String "result") -> (
      match
        (Option.bind (Json.mem json "cached") Json.as_bool, Json.mem json "row")
      with
      | Some cached, Some row -> Ok (Result { cached; row })
      | _ -> Error "result reply needs \"cached\" and \"row\"")
  | Some (Json.String "failed") -> (
      match Option.bind (Json.mem json "failure") Json.as_string with
      | Some token -> (
          match Budget.failure_of_string token with
          | Some f -> Ok (Failed f)
          | None -> Error (Printf.sprintf "unknown failure token %S" token))
      | None -> Error "failed reply without \"failure\"")
  | Some (Json.String "rejected") -> (
      let detail () =
        match Option.bind (Json.mem json "detail") Json.as_string with
        | Some d -> d
        | None -> ""
      in
      match Option.bind (Json.mem json "reason") Json.as_string with
      | Some "overloaded" -> Ok (Rejected Overloaded)
      | Some "draining" -> Ok (Rejected Draining)
      | Some "protocol" -> Ok (Rejected (Protocol (detail ())))
      | Some other -> Error (Printf.sprintf "unknown reject reason %S" other)
      | None -> Error "rejected reply without \"reason\"")
  | Some (Json.String other) -> Error (Printf.sprintf "unknown reply %S" other)
  | Some _ -> Error "\"reply\" must be a string"
  | None -> Error "missing \"reply\" field"
