module Json = Dmc_util.Json
module Ipc = Dmc_util.Ipc
module Budget = Dmc_util.Budget
module Pool = Dmc_runtime.Pool
module Fault = Dmc_runtime.Fault
module Engine_job = Dmc_core.Engine_job
module Counter = Dmc_obs.Counter
module Gauge = Dmc_obs.Gauge
module Histogram = Dmc_obs.Histogram
module Registry = Dmc_obs.Registry

type config = {
  socket_path : string;
  cache_dir : string option;
  cache_entries : int;
  max_inflight : int;
  read_timeout : float;
  jobs : int;
  job_timeout : float option;
  max_retries : int;
  faults : Fault.t list;
  should_drain : unit -> bool;
  on_ready : (unit -> unit) option;
}

let default =
  {
    socket_path = "dmc.sock";
    cache_dir = None;
    cache_entries = 1024;
    max_inflight = 64;
    read_timeout = 10.;
    jobs = 1;
    job_timeout = None;
    max_retries = 2;
    faults = [];
    should_drain = (fun () -> false);
    on_ready = None;
  }

let c_accept = Counter.make "serve.accept"
let c_request = Counter.make "serve.request"
let c_reply_ok = Counter.make "serve.reply.ok"
let c_reply_error = Counter.make "serve.reply.error"
let c_reject_overloaded = Counter.make "serve.reject.overloaded"

(* Queries dispatched to a worker — the CI warm-restart smoke asserts
   this stays at zero when every query is answered from the persisted
   cache. *)
let c_compute = Counter.make "serve.compute"
let c_fault_drop = Counter.make "serve.fault.drop"
let c_fault_truncate = Counter.make "serve.fault.truncate"
let c_fault_slow = Counter.make "serve.fault.slow"
let g_queue = Gauge.make "serve.queue.depth"
let g_inflight = Gauge.make "serve.inflight"
let g_hit_ratio = Gauge.make "serve.cache.hit_ratio"

(* Per-request latency, split so queue-wait, engine time and cache
   lookups are separable in the exposition: microsecond histograms
   (percentiles ride the registry's log buckets) plus matching spans in
   the trace. *)
let h_request = Histogram.make "serve.lat.request_us"
let h_queue_wait = Histogram.make "serve.lat.queue_wait_us"
let h_engine = Histogram.make "serve.lat.engine_us"
let h_cache_lookup = Histogram.make "serve.lat.cache_lookup_us"

let cache_ratio () =
  let hits = (Registry.counter "serve.cache.hit").Registry.c_value in
  let misses = (Registry.counter "serve.cache.miss").Registry.c_value in
  let total = hits + misses in
  ( hits,
    misses,
    if total = 0 then 0. else float_of_int hits /. float_of_int total )

let metrics_json ~started () =
  let hits, misses, ratio = cache_ratio () in
  Gauge.set g_hit_ratio ratio;
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. started));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("ratio", Json.Float ratio);
          ] );
      ("registry", Dmc_obs.Export.to_json ());
      ("text", Json.String (Dmc_obs.Export.prometheus ()));
    ]

let stats_json () =
  let counters =
    List.rev
      (Registry.fold_counters
         (fun acc c -> (c.Registry.c_name, Json.Int c.c_value) :: acc)
         [])
  in
  let gauges =
    List.rev
      (Registry.fold_gauges
         (fun acc g ->
           if g.Registry.g_set then (g.Registry.g_name, Json.Float g.g_value) :: acc
           else acc)
         [])
  in
  Json.Obj [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges) ]

(* ------------------------------------------------------------------ *)

type conn_state =
  | Reading  (** accumulating the request frame *)
  | Computing  (** submitted to the pool; the commit hook replies *)

type conn = {
  fd : Unix.file_descr;
  cid : int;  (** 1-based accept index — the fault-injection handle *)
  buf : Buffer.t;
  deadline : float;
  accepted_at : float;  (** registry clock, microseconds *)
  slow : bool;
  truncate : bool;
  mutable state : conn_state;
  mutable closed : bool;
}

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()

(* The typed reply for a connection whose read deadline passed
   mid-frame: how much of the frame arrived versus how much the header
   (if we have one) promised. *)
let deadline_detail c =
  let got = Buffer.length c.buf in
  let expected =
    if got >= Ipc.header_bytes then
      match Ipc.parse_header (Buffer.sub c.buf 0 Ipc.header_bytes) with
      | Ok plen -> Ipc.header_bytes + plen
      | Error _ -> Ipc.header_bytes
    else Ipc.header_bytes
  in
  Printf.sprintf "read deadline exceeded: expected %d bytes, got %d" expected
    got

let bind_listen path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } ->
        (* a previous daemon's socket: stale after a kill -9, safe to
           reclaim — two live daemons on one path is operator error *)
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> failwith (path ^ " exists and is not a socket")
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd
  with
  | () -> Ok fd
  | exception Failure msg ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error msg
  | exception Unix.Unix_error (e, op, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s (%s)" path (Unix.error_message e) op)

let serve cfg =
  Registry.set_enabled true;
  let started = Unix.gettimeofday () in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Own the cache directory before touching the socket or the cache
     file: a second daemon on the same --cache-dir must fail fast with
     a typed error, not interleave write-throughs with the first. *)
  let dir_lock =
    match cfg.cache_dir with
    | None -> Ok None
    | Some dir -> (
        match Result_cache.lock_dir dir with
        | Ok l -> Ok (Some l)
        | Error e -> Error (Result_cache.lock_error_to_string e))
  in
  match dir_lock with
  | Error _ as e -> e
  | Ok dir_lock -> (
  let unlock () = Option.iter Result_cache.unlock_dir dir_lock in
  match bind_listen cfg.socket_path with
  | Error _ as e ->
      unlock ();
      e
  | Ok lfd ->
      let cache =
        Result_cache.create ?dir:cfg.cache_dir ~capacity:cfg.cache_entries ()
      in
      let conns = ref [] in
      (* job id -> (connection, cache key, submit instant µs) *)
      let jobs : (int, conn * string * float) Hashtbl.t = Hashtbl.create 64 in
      let draining = ref false in
      let listen_open = ref true in
      let accepted = ref 0 in
      let close_listen () =
        if !listen_open then begin
          listen_open := false;
          try Unix.close lfd with Unix.Unix_error _ -> ()
        end
      in
      let server_fault cid =
        match cfg.faults |> Fault.applies ~job:(cid - 1) ~attempt:1 with
        | Some k when not (Fault.is_worker_kind k) -> Some k
        | Some _ | None -> None
      in
      let close_conn c =
        if not c.closed then begin
          c.closed <- true;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end
      in
      let send_reply c reply =
        if not c.closed then begin
          (match reply with
          | Protocol.Pong | Protocol.Stats_snapshot _
          | Protocol.Metrics_snapshot _ | Protocol.Bye | Protocol.Result _ ->
              Counter.incr c_reply_ok
          | Protocol.Failed _ | Protocol.Rejected _ ->
              Counter.incr c_reply_error);
          (let dur = Registry.now_us () -. c.accepted_at in
           Histogram.observe h_request (int_of_float dur);
           if Registry.is_enabled () then
             Registry.add_event ~name:"serve.request"
               ~attrs:[ ("cid", string_of_int c.cid) ]
               ~ts_us:c.accepted_at ~dur_us:dur ());
          let bytes = Ipc.encode_frame (Protocol.reply_to_json reply) in
          let bytes =
            if c.truncate then begin
              Counter.incr c_fault_truncate;
              String.sub bytes 0 (String.length bytes / 2)
            end
            else bytes
          in
          write_all c.fd bytes;
          close_conn c
        end
      in
      let begin_drain () =
        if not !draining then begin
          draining := true;
          close_listen ();
          (* Connections still mid-request get a typed refusal;
             computing ones keep their pending reply — drain means
             finish what was admitted, refuse what was not. *)
          List.iter
            (fun c ->
              match c.state with
              | Reading -> send_reply c (Protocol.Rejected Protocol.Draining)
              | Computing -> ())
            !conns
        end
      in
      let pool_cfg =
        {
          Pool.default with
          jobs = cfg.jobs;
          timeout = cfg.job_timeout;
          max_retries = cfg.max_retries;
          faults = List.filter (fun f -> Fault.is_worker_kind f.Fault.kind) cfg.faults;
        }
      in
      let on_commit id (outcome : Pool.outcome) =
        match Hashtbl.find_opt jobs id with
        | None -> ()
        | Some (c, key, submitted_us) -> (
            Hashtbl.remove jobs id;
            (* Separate queue-wait from engine time: the outcome's
               [elapsed] covers dispatch-to-verdict, so the remainder of
               submit-to-commit is time spent queued (plus settle
               overhead). *)
            (let total_us = Registry.now_us () -. submitted_us in
             let engine_us = outcome.elapsed *. 1e6 in
             let queue_us = Float.max 0. (total_us -. engine_us) in
             Histogram.observe h_queue_wait (int_of_float queue_us);
             Histogram.observe h_engine (int_of_float engine_us);
             if Registry.is_enabled () then begin
               Registry.add_event ~name:"serve.queue_wait"
                 ~attrs:[ ("job", string_of_int id) ]
                 ~ts_us:submitted_us ~dur_us:queue_us ();
               Registry.add_event ~name:"serve.engine"
                 ~attrs:[ ("job", string_of_int id) ]
                 ~ts_us:(submitted_us +. queue_us)
                 ~dur_us:engine_us ()
             end);
            match outcome.verdict with
            | Pool.Done row ->
                (* cache before replying: once a client has seen a row,
                   a kill -9 must not be able to lose it *)
                Result_cache.add cache key row;
                send_reply c (Protocol.Result { cached = false; row })
            | v ->
                let failure =
                  match Pool.verdict_failure v with
                  | Some f -> f
                  | None -> Budget.Internal "unclassified verdict"
                in
                send_reply c (Protocol.Failed failure))
      in
      let pool =
        Pool.create ~ordered:false pool_cfg
          ~worker:(fun _ job -> Engine_job.run job)
          ~on_commit ()
      in
      let resolve_graph = function
        | Protocol.Graph g -> Ok g
        | Protocol.Spec spec -> (
            match Dmc_gen.Workload.parse spec with
            | Ok g -> Ok (Dmc_cdag.Serialize.to_string g)
            | Error msg ->
                Error (Budget.Invalid_input ("bad workload spec: " ^ msg)))
      in
      let handle_request c req =
        Counter.incr c_request;
        match req with
        | Protocol.Ping -> send_reply c Protocol.Pong
        | Protocol.Stats ->
            Gauge.set g_queue (float_of_int (Pool.unfinished pool));
            Gauge.set g_inflight (float_of_int (Pool.running pool));
            let _, _, ratio = cache_ratio () in
            Gauge.set g_hit_ratio ratio;
            send_reply c (Protocol.Stats_snapshot (stats_json ()))
        | Protocol.Metrics ->
            Gauge.set g_queue (float_of_int (Pool.unfinished pool));
            Gauge.set g_inflight (float_of_int (Pool.running pool));
            send_reply c (Protocol.Metrics_snapshot (metrics_json ~started ()))
        | Protocol.Shutdown ->
            send_reply c Protocol.Bye;
            begin_drain ()
        | Protocol.Query q -> (
            if !draining then send_reply c (Protocol.Rejected Protocol.Draining)
            else begin
              (* spec-sourced queries are keyed by the spec string, so
                 the cache is consulted before any graph is built;
                 inline graphs keep their canonicalized-graph keys *)
              let key =
                match q.source with
                | Protocol.Spec spec ->
                    Cache_key.of_spec ~engine:q.engine ~s:q.s
                      ~timeout:q.timeout ~node_budget:q.node_budget
                      ~samples:q.samples spec
                | Protocol.Graph graph ->
                    Cache_key.of_job
                      {
                        Engine_job.engine = q.engine;
                        graph;
                        s = q.s;
                        p = 1;
                        timeout = q.timeout;
                        node_budget = q.node_budget;
                        samples = q.samples;
                      }
              in
              let lookup_t0 = Registry.now_us () in
              let found = Result_cache.find cache key in
              (let dur = Registry.now_us () -. lookup_t0 in
               Histogram.observe h_cache_lookup (int_of_float dur);
               if Registry.is_enabled () then
                 Registry.add_event ~name:"serve.cache_lookup"
                   ~attrs:[ ("cid", string_of_int c.cid) ]
                   ~ts_us:lookup_t0 ~dur_us:dur ());
              match found with
              | Some row -> send_reply c (Protocol.Result { cached = true; row })
              | None -> (
                  match resolve_graph q.source with
                  | Error f -> send_reply c (Protocol.Failed f)
                  | Ok graph ->
                      let job =
                        {
                          Engine_job.engine = q.engine;
                          graph;
                          s = q.s;
                          p = 1;
                          timeout = q.timeout;
                          node_budget = q.node_budget;
                          samples = q.samples;
                        }
                      in
                      if Pool.unfinished pool >= cfg.max_inflight then begin
                        Counter.incr c_reject_overloaded;
                        send_reply c (Protocol.Rejected Protocol.Overloaded)
                      end
                      else begin
                        Counter.incr c_compute;
                        let id = Pool.submit pool job in
                        Hashtbl.replace jobs id (c, key, Registry.now_us ());
                        c.state <- Computing
                      end)
            end)
      in
      (* Try to complete (and answer) the request frame in [c.buf]. *)
      let feed c =
        let len = Buffer.length c.buf in
        if len >= Ipc.header_bytes then
          match Ipc.parse_header (Buffer.sub c.buf 0 Ipc.header_bytes) with
          | Error e ->
              send_reply c
                (Protocol.Rejected
                   (Protocol.Protocol (Ipc.read_error_to_string e)))
          | Ok plen ->
              if len >= Ipc.header_bytes + plen then
                if len > Ipc.header_bytes + plen then
                  send_reply c
                    (Protocol.Rejected
                       (Protocol.Protocol
                          (Printf.sprintf
                             "%d trailing bytes after the request frame"
                             (len - Ipc.header_bytes - plen))))
                else
                  match
                    Ipc.parse_payload (Buffer.sub c.buf Ipc.header_bytes plen)
                  with
                  | Error e ->
                      send_reply c
                        (Protocol.Rejected
                           (Protocol.Protocol (Ipc.read_error_to_string e)))
                  | Ok json -> (
                      match Protocol.request_of_json json with
                      | Error msg ->
                          send_reply c
                            (Protocol.Rejected (Protocol.Protocol msg))
                      | Ok req -> handle_request c req)
      in
      let accept_ready () =
        match Unix.accept ~cloexec:true lfd with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | fd, _ -> (
            incr accepted;
            Counter.incr c_accept;
            let cid = !accepted in
            match server_fault cid with
            | Some Fault.Drop ->
                Counter.incr c_fault_drop;
                (try Unix.close fd with Unix.Unix_error _ -> ())
            | sf ->
                let slow = sf = Some Fault.Slow in
                if slow then Counter.incr c_fault_slow;
                let c =
                  {
                    fd;
                    cid;
                    buf = Buffer.create 256;
                    deadline = Budget.now () +. cfg.read_timeout;
                    accepted_at = Registry.now_us ();
                    slow;
                    truncate = sf = Some Fault.Truncate;
                    state = Reading;
                    closed = false;
                  }
                in
                conns := c :: !conns)
      in
      let is_reading c = match c.state with Reading -> true | Computing -> false in
      let finished () =
        !draining && !conns = [] && Pool.unfinished pool = 0
      in
      Option.iter (fun f -> f ()) cfg.on_ready;
      while not (finished ()) do
        if cfg.should_drain () then begin_drain ();
        conns := List.filter (fun c -> not c.closed) !conns;
        if not (finished ()) then begin
          let now = Budget.now () in
          (* Expire read deadlines — a slow-loris (or a Slow-faulted
             loop) ends here with a typed reply, not a stuck slot. *)
          List.iter
            (fun c ->
              if is_reading c && now > c.deadline then
                send_reply c
                  (Protocol.Rejected (Protocol.Protocol (deadline_detail c))))
            !conns;
          conns := List.filter (fun c -> not c.closed) !conns;
          let read_fds =
            (if !listen_open then [ lfd ] else [])
            @ List.filter_map
                (fun c ->
                  if is_reading c && not c.slow then Some c.fd else None)
                !conns
            @ Pool.watch_fds pool
          in
          let timeout =
            Float.max 0.
              (List.fold_left
                 (fun acc c ->
                   if is_reading c then Float.min acc (c.deadline -. now)
                   else acc)
                 0.2 !conns)
          in
          let readable =
            if read_fds = [] then begin
              ignore (Unix.select [] [] [] timeout : _ * _ * _);
              []
            end
            else
              match Unix.select read_fds [] [] timeout with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          if !listen_open && List.memq lfd readable then accept_ready ();
          List.iter
            (fun c ->
              if
                (not c.closed) && is_reading c && (not c.slow)
                && List.memq c.fd readable
              then begin
                let chunk = Bytes.create 65536 in
                match Unix.read c.fd chunk 0 65536 with
                | 0 ->
                    (* peer closed; mid-frame that's a typed truncation,
                       before any byte it's just a vanished client *)
                    let got = Buffer.length c.buf in
                    if got = 0 then close_conn c
                    else
                      send_reply c
                        (Protocol.Rejected
                           (Protocol.Protocol
                              (Printf.sprintf
                                 "truncated request: got %d bytes then EOF" got)))
                | k ->
                    Buffer.add_subbytes c.buf chunk 0 k;
                    feed c
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception
                    Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                    close_conn c
              end)
            !conns;
          Pool.step ~max_wait:0. pool;
          Gauge.set g_queue (float_of_int (Pool.unfinished pool));
          Gauge.set g_inflight (float_of_int (Pool.running pool))
        end
      done;
      Result_cache.save cache;
      close_listen ();
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      unlock ();
      Ok ())
