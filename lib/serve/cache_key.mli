(** Content-addressed cache keys for bound-query results.

    A governed bound is a pure function of its {!Dmc_core.Engine_job}:
    the CDAG, the engine name, the fast-memory size and the resource
    budget determine the row completely.  The daemon therefore keys its
    result cache by a digest of exactly those inputs — two queries that
    describe the same computation hit the same entry no matter how they
    arrived (generator spec vs. inline graph text, different whitespace
    in the serialization, different clients). *)

val version : string
(** Version tag mixed into every key.  Bump it when the row payload or
    the key material changes shape: old persisted entries then miss
    instead of replaying a stale format. *)

val spec_version : string
(** Separate version tag for the spec-keyed space below; bumping either
    tag invalidates only its own key space. *)

val of_spec :
  engine:string ->
  s:int ->
  timeout:float option ->
  node_budget:int option ->
  samples:int ->
  string ->
  string
(** Key for a workload-spec query, digesting the (trimmed) spec string
    itself plus the engine parameters — the graph is never built, so a
    repeat query for a named workload is answered from cache without
    paying materialization.  Spec keys live in their own version space
    ({!spec_version}): they can never collide with {!of_job} keys, and
    a spec and its materialized graph are deliberately cached as two
    entries — the price of never building the graph on the hot path. *)

val of_job : Dmc_core.Engine_job.t -> string
(** The hex digest naming [job]'s result.  The graph text is
    canonicalized first (parsed and re-serialized) so formatting
    differences cannot split cache entries; a graph that fails to parse
    is digested verbatim — the job will fail with [Invalid_input]
    anyway, and broken inputs deserve cache slots no more stable than
    their bytes. *)
