(** Content-addressed cache keys for bound-query results.

    A governed bound is a pure function of its {!Dmc_core.Engine_job}:
    the CDAG, the engine name, the fast-memory size and the resource
    budget determine the row completely.  The daemon therefore keys its
    result cache by a digest of exactly those inputs — two queries that
    describe the same computation hit the same entry no matter how they
    arrived (generator spec vs. inline graph text, different whitespace
    in the serialization, different clients). *)

val version : string
(** Version tag mixed into every key.  Bump it when the row payload or
    the key material changes shape: old persisted entries then miss
    instead of replaying a stale format. *)

val of_job : Dmc_core.Engine_job.t -> string
(** The hex digest naming [job]'s result.  The graph text is
    canonicalized first (parsed and re-serialized) so formatting
    differences cannot split cache entries; a graph that fails to parse
    is digested verbatim — the job will fail with [Invalid_input]
    anyway, and broken inputs deserve cache slots no more stable than
    their bytes. *)
