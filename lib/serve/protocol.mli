(** The [dmc serve] wire protocol: typed requests and replies.

    Transport is {!Dmc_util.Ipc} length-prefixed JSON frames over a
    Unix-domain socket, one request and one reply per connection.  This
    module owns the request/reply shapes and their codecs, so the
    server, the [dmc query] client and the tests all speak from one
    definition — a protocol drift becomes a compile error, not a
    hanging socket.

    Every way the server can refuse work is a typed reply, never a
    dropped connection: computation failures carry the
    {!Dmc_util.Budget.failure} taxonomy (so a daemon timeout reads
    exactly like a CLI timeout), and server-side refusals
    (overload, drain, protocol violations) carry their own closed
    {!reject} type. *)

type source =
  | Spec of string  (** a {!Dmc_gen.Workload} spec, resolved server-side *)
  | Graph of string  (** inline {!Dmc_cdag.Serialize} text *)

type query = {
  source : source;
  engine : string;  (** a {!Dmc_core.Bounds.governed_engines} name *)
  s : int;
  timeout : float option;
  node_budget : int option;
  samples : int;
}

type request =
  | Ping  (** liveness probe; answered from the event loop *)
  | Stats  (** counter/gauge snapshot, for monitoring and the CI smoke *)
  | Metrics
      (** the full registry exposition: counters, histogram
          percentiles, gauges, cache hit ratio, uptime — as structured
          JSON plus a Prometheus-style text rendering ([dmc query
          --metrics] prints the text for scrapers) *)
  | Shutdown  (** begin a graceful drain, as if SIGTERMed *)
  | Query of query

type reject =
  | Overloaded
      (** admission control: the bounded in-flight queue is full — retry
          later, nothing was computed *)
  | Draining
      (** the daemon is shutting down and no longer admits queries *)
  | Protocol of string
      (** the request frame or its shape was invalid (bad header,
          oversized, not JSON, unknown request, read deadline
          exceeded); the detail says which *)

type reply =
  | Pong
  | Stats_snapshot of Dmc_util.Json.t
  | Metrics_snapshot of Dmc_util.Json.t
      (** [{"uptime_s", "cache": {hits, misses, ratio}, "registry":
          <Export.to_json>, "text": <Export.prometheus>}] *)
  | Bye  (** shutdown acknowledged; drain has begun *)
  | Result of { cached : bool; row : Dmc_util.Json.t }
      (** a bound row ({!Dmc_core.Bounds.row_to_json} shape);
          [cached] distinguishes a cache hit from fresh computation *)
  | Failed of Dmc_util.Budget.failure
      (** the query was admitted but its computation failed; the
          failure taxonomy token crosses the wire intact *)
  | Rejected of reject

val query :
  ?timeout:float ->
  ?node_budget:int ->
  ?samples:int ->
  source ->
  engine:string ->
  s:int ->
  request
(** [samples] defaults to 64, matching {!Dmc_core.Engine_job.make}. *)

val request_to_json : request -> Dmc_util.Json.t
val request_of_json : Dmc_util.Json.t -> (request, string) result
val reply_to_json : reply -> Dmc_util.Json.t
val reply_of_json : Dmc_util.Json.t -> (reply, string) result
