module Json = Dmc_util.Json
module Checkpoint = Dmc_util.Checkpoint
module Lru = Dmc_sim.Cache

let c_hit = Dmc_obs.Counter.make "serve.cache.hit"
let c_miss = Dmc_obs.Counter.make "serve.cache.miss"
let c_eviction = Dmc_obs.Counter.make "serve.cache.eviction"
let g_size = Dmc_obs.Gauge.make "serve.cache.size"

(* [Dmc_sim.Cache] tracks recency over integer keys, so each digest
   gets a small integer id for the LRU's benefit; [ids]/[by_id] map
   both ways.  Ids are never reused — 63-bit counter, one per distinct
   key ever inserted. *)
type t = {
  lru : Lru.t;
  ids : (string, int) Hashtbl.t;
  by_id : (int, string * Json.t) Hashtbl.t;
  mutable next_id : int;
  file : string option;
}

let size t = Hashtbl.length t.by_id
let capacity t = Lru.capacity t.lru

let entries t =
  let acc = ref [] in
  Lru.iter (fun id ~dirty:_ -> acc := Hashtbl.find t.by_id id :: !acc) t.lru;
  List.rev !acc

let format_version = 1

let to_json t =
  Json.Obj
    [
      ("version", Json.Int format_version);
      ("key_version", Json.String Cache_key.version);
      ( "entries",
        Json.List
          (List.map
             (fun (key, row) ->
               Json.Obj [ ("key", Json.String key); ("row", row) ])
             (entries t)) );
    ]

let save t =
  match t.file with
  | None -> ()
  | Some file ->
      Checkpoint.write file (to_json t);
      Dmc_obs.Gauge.set g_size (float_of_int (size t))

(* Insert without touching the backing file — shared by [add] and the
   load path (loading must not rewrite what it just read). *)
let put t key row =
  match Hashtbl.find_opt t.ids key with
  | Some id ->
      Hashtbl.replace t.by_id id (key, row);
      ignore (Lru.insert t.lru id : Lru.eviction option)
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.ids key id;
      Hashtbl.replace t.by_id id (key, row);
      (match Lru.insert t.lru id with
      | None -> ()
      | Some { Lru.key = victim; _ } ->
          Dmc_obs.Counter.incr c_eviction;
          let vkey, _ = Hashtbl.find t.by_id victim in
          Hashtbl.remove t.by_id victim;
          Hashtbl.remove t.ids vkey)

let add t key row =
  put t key row;
  Dmc_obs.Gauge.set g_size (float_of_int (size t));
  save t

let find t key =
  match Hashtbl.find_opt t.ids key with
  | Some id ->
      ignore (Lru.touch t.lru id : bool);
      Dmc_obs.Counter.incr c_hit;
      Some (snd (Hashtbl.find t.by_id id))
  | None ->
      Dmc_obs.Counter.incr c_miss;
      None

(* Tolerant load: shape mismatches, a stale key version and parse
   errors all yield an empty cache.  Entries load in file order, which
   [to_json] wrote LRU-to-MRU, so recency survives the round trip. *)
let load t file =
  match Checkpoint.load file with
  | Error _ -> ()
  | Ok json ->
      let version_ok =
        Option.bind (Json.mem json "version") Json.as_int
          = Some format_version
        && Option.bind (Json.mem json "key_version") Json.as_string
           = Some Cache_key.version
      in
      if version_ok then
        match Option.bind (Json.mem json "entries") Json.as_list with
        | None -> ()
        | Some items ->
            List.iter
              (fun item ->
                match
                  ( Option.bind (Json.mem item "key") Json.as_string,
                    Json.mem item "row" )
                with
                | Some key, Some row -> put t key row
                | _ -> ())
              items

let create ?dir ~capacity () =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity must be >= 1";
  let file =
    Option.map
      (fun dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
        Filename.concat dir "results.json")
      dir
  in
  let t =
    {
      lru = Lru.create ~capacity;
      ids = Hashtbl.create 64;
      by_id = Hashtbl.create 64;
      next_id = 0;
      file;
    }
  in
  Option.iter
    (fun file ->
      ignore (Checkpoint.sweep_orphans file : int);
      if Sys.file_exists file then load t file)
    t.file;
  Dmc_obs.Gauge.set g_size (float_of_int (size t));
  t

(* --------------------------------------------------------------- *)
(* Directory ownership                                              *)

type lock = { lock_path : string }

type lock_error =
  | Held of { pid : int; path : string }
  | Lock_io of string

let lock_error_to_string = function
  | Held { pid; path } ->
      Printf.sprintf
        "cache directory is owned by a running daemon (pid %d holds %s)" pid
        path
  | Lock_io msg -> "cache lock: " ^ msg

let unlock_dir { lock_path } =
  try Sys.remove lock_path with Sys_error _ -> ()

(* O_EXCL is the atomicity; pid-liveness is the staleness rule.  A
   reclaim races only against other *starting* daemons (the running
   owner never rewrites its lock), and the single retry keeps the
   worst case at one loser reporting the winner as [Held]. *)
let lock_dir dir =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let path = Filename.concat dir "lock.pid" in
  let try_acquire () =
    match Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd ->
        let body = string_of_int (Unix.getpid ()) ^ "\n" in
        let ok =
          match Unix.write_substring fd body 0 (String.length body) with
          | _ -> true
          | exception Unix.Unix_error _ -> false
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if ok then Ok { lock_path = path }
        else begin
          (try Sys.remove path with Sys_error _ -> ());
          Error (Lock_io (path ^ ": could not write owner pid"))
        end
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Error (Held { pid = 0; path })
    | exception Unix.Unix_error (e, op, _) ->
        Error (Lock_io (Printf.sprintf "%s: %s (%s)" path (Unix.error_message e) op))
  in
  let owner_alive () =
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> input_line ic)
    with
    | line -> (
        match int_of_string_opt (String.trim line) with
        | Some pid when pid > 0 -> (
            match Unix.kill pid 0 with
            | () -> Some pid
            | exception Unix.Unix_error (Unix.ESRCH, _, _) -> None
            | exception Unix.Unix_error (_, _, _) ->
                (* EPERM etc.: the pid exists but is not ours *)
                Some pid)
        | Some _ | None -> None (* unreadable owner = stale *))
    | exception _ -> None (* vanished or unreadable = stale *)
  in
  match try_acquire () with
  | Ok _ as ok -> ok
  | Error (Lock_io _) as e -> e
  | Error (Held _) -> (
      match owner_alive () with
      | Some pid -> Error (Held { pid; path })
      | None -> (
          (* stale: reclaim once *)
          (try Sys.remove path with Sys_error _ -> ());
          match try_acquire () with
          | Ok _ as ok -> ok
          | Error (Lock_io _) as e -> e
          | Error (Held _) ->
              let pid = Option.value (owner_alive ()) ~default:0 in
              Error (Held { pid; path })))
