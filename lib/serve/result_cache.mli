(** The daemon's content-addressed result cache: an LRU over
    {!Cache_key} digests with write-through persistence.

    The recency structure is the hierarchy simulator's own
    {!Dmc_sim.Cache} — the same doubly-linked LRU the paper's memory
    model runs on — wrapped with a string-key index and a JSON payload
    store.  Hits, misses and evictions are exported as
    [serve.cache.*] counters through {!Dmc_obs}.

    Persistence is write-through via {!Dmc_util.Checkpoint}: every
    {!add} rewrites the backing file atomically (fsync before rename),
    so a [kill -9] loses at most results still in flight — never an
    entry that was already answered from.  Entries are stored in
    LRU-to-MRU order and reloaded in that order, so recency survives a
    restart too. *)

type t

val create : ?dir:string -> capacity:int -> unit -> t
(** An empty cache holding at most [capacity] entries
    ([Invalid_argument] if not positive).  With [dir], results persist
    to [dir/results.json] (the directory is created if missing, orphaned
    checkpoint temps are swept, and an existing file is loaded back); a
    missing or corrupt file yields an empty cache — a damaged cache
    must cost recomputation, never availability. *)

val find : t -> string -> Dmc_util.Json.t option
(** Look up a key, refreshing its recency on a hit.  Bumps
    [serve.cache.hit] or [serve.cache.miss]. *)

val add : t -> string -> Dmc_util.Json.t -> unit
(** Insert (or refresh) an entry as most-recently-used, evicting the
    LRU entry when full (bumping [serve.cache.eviction]), then persist
    if backed by a directory.  A failed persist raises [Sys_error] —
    the daemon treats a cache it cannot write like a checkpoint it
    cannot write: fatal, not silently volatile. *)

val save : t -> unit
(** Persist now (no-op without [dir]) — the drain path's final write. *)

val size : t -> int
val capacity : t -> int

val entries : t -> (string * Dmc_util.Json.t) list
(** Snapshot in LRU-to-MRU order — the persistence order; exposed for
    tests. *)

(** {1 Directory ownership}

    Two daemons pointed at the same [--cache-dir] would interleave
    write-throughs: each [add] rewrites the whole backing file, so the
    slower writer silently erases the faster one's entries.  The lock
    makes the second daemon fail fast with a typed error instead.

    The lock is a [lock.pid] file created with [O_EXCL] holding the
    owner's pid — deliberately {e not} [lockf]: POSIX record locks do
    not conflict within one process (untestable) and vanish on any
    fd close.  Staleness is pid-liveness: a lock whose recorded owner
    is gone (a [kill -9]'d daemon never unlocks) is reclaimed, so
    crash-restart needs no manual cleanup. *)

type lock

type lock_error =
  | Held of { pid : int; path : string }
      (** a live process owns the directory *)
  | Lock_io of string  (** could not create/read the lock file *)

val lock_error_to_string : lock_error -> string

val lock_dir : string -> (lock, lock_error) result
(** Take ownership of [dir] (created if missing).  Reclaims a stale
    lock (dead owner pid, or unreadable contents) exactly once before
    reporting [Held]. *)

val unlock_dir : lock -> unit
(** Release; removing an already-removed lock is a no-op. *)
