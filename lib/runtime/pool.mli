(** Supervised worker pool over pluggable transports.

    Each job runs in its own process — by default a forked child
    ({!Transport.Fork}), optionally a spawned command such as
    [ssh host dmc worker] ({!Transport.Command}) — so nothing a worker
    does — blow the OCaml stack, exhaust the heap, segfault, spin
    forever in a non-cooperative loop — can take the supervisor down or
    corrupt a sibling.  The supervisor enforces a {e hard} wall-clock
    deadline per attempt with SIGKILL (no reliance on the cooperative
    {!Dmc_util.Budget} polling the engines do internally), classifies
    every way an attempt can end into the closed {!verdict} type, and
    retries transient verdicts with capped exponential backoff and
    deterministic jitter.

    With multiple {!Host}s, every attempt is a {e lease}: the pool
    picks the healthiest host with a free slot, attributes each
    attempt's evidence to that host ({!Host.record}), and when a host
    is quarantined — repeated transport failures, or garbage instead of
    protocol — takes back its in-flight leases (SIGKILL), {e refunds}
    the jobs' attempt counts and requeues them on surviving backends
    (re-sharding).  A job only burns its own retry budget on evidence
    about the job; a run only fails to make progress when every backend
    is gone.  None of this machinery is observable in the committed
    results: outcomes depend on the job alone, so the byte-determinism
    contract below holds for any host set and any failure schedule.

    Results are {e committed in submission order}: [on_result] fires
    for job [i] only once jobs [0..i-1] have fired, regardless of
    which worker finished first.  Output streams and checkpoints built
    in [on_result] are therefore byte-deterministic for any [jobs]
    count — [--jobs 4] produces exactly the bytes [--jobs 1] does.

    Workers speak length-prefixed JSON ({!Dmc_util.Ipc}) over a pipe:
    optional [{"hb": {"phase": ...}}] heartbeat frames (only when
    [config.on_progress] is set), then one result frame
    [{"ok": payload}] or [{"err": failure}], then exit.  Anything
    else — garbage bytes, a truncated frame, a silent exit, trailing
    bytes after the result — is a {!Worker_protocol_error}. *)

type verdict =
  | Done of Dmc_util.Json.t  (** the worker returned a payload *)
  | Timed_out
      (** the supervisor SIGKILLed the attempt at the hard deadline *)
  | Crashed of int
      (** the child died on a signal it did not expect (OCaml signal
          number, e.g. [Sys.sigabrt]; render with {!signal_name}) *)
  | Engine_failure of Dmc_util.Budget.failure
      (** the worker function itself reported a governed failure —
          deterministic, so never retried *)
  | Worker_protocol_error of string
      (** the child exited without a well-formed result frame *)

type outcome = {
  verdict : verdict;
  attempts : int;  (** total attempts, including the final one *)
  backoffs : float list;
      (** the delay slept before each retry, in retry order — empty
          when the first attempt was final *)
  elapsed : float;  (** dispatch of attempt 1 to final verdict *)
}

type config = {
  jobs : int;  (** max concurrent workers (>= 1) *)
  timeout : float option;  (** hard per-attempt deadline, seconds *)
  max_retries : int;  (** extra attempts allowed for transient verdicts *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_cap : float;  (** upper bound on the un-jittered delay *)
  faults : Fault.t list;
  should_stop : unit -> bool;
      (** polled between supervision steps; [true] stops dispatch,
          kills in-flight workers and returns early (see {!run}) *)
  accept_more : unit -> bool;
      (** polled before each dispatch; [false] switches to draining —
          in-flight attempts run to completion, but nothing new (first
          attempts or retries) starts, and every job past the
          committed prefix finalizes as [Engine_failure Cancelled].
          How [--timeout] stops a run between units while keeping
          every committed unit's result. *)
  on_progress : (Progress.t -> unit) option;
      (** called from the supervisor loop at most ~4 times a second
          with a snapshot of scheduling state and worker heartbeat
          phases.  Setting it also switches workers into heartbeat
          mode: each child enables its registry and reports its
          innermost closing span name as a rate-limited phase tick
          over the result pipe.  [None] (the default) keeps the wire
          protocol exactly one result frame per attempt. *)
  postmortem_dir : string option;
      (** when set, every attempt that ends crashed / timed-out /
          protocol-broken dumps the flight-recorder ring to a
          timestamped [postmortem-*.json] in this directory (created
          if needed) via {!Dmc_obs.Flight.write}.  Best-effort: a
          failed dump warns on stderr and never perturbs
          supervision. *)
}

val default : config
(** [jobs = 1], no timeout, [max_retries = 2], base 0.1 s, cap 2 s,
    no faults (callers wanting the [DMC_FAULT] hook add
    {!Fault.of_env} explicitly), never stops, always accepts. *)

val is_transient : verdict -> bool
(** [Timed_out], [Crashed] and [Worker_protocol_error] are worth
    retrying; [Done] and [Engine_failure] are final. *)

val backoff_delay : config -> job:int -> attempt:int -> float
(** The delay slept before retrying [job] (0-based) after failed
    attempt [attempt] (1-based): [min cap (base * 2^(attempt-1))]
    plus up to 25% deterministic jitter derived from [(job, attempt)]
    alone — identical across runs, so retry schedules are
    reproducible. *)

val signal_name : int -> string
(** ["SIGABRT"], ["SIGKILL"], ... for the OCaml signal numbers the
    toolkit can meet; ["signal <n>"] otherwise. *)

val verdict_to_string : verdict -> string
(** ["ok"], ["timed-out"], ["crashed: SIGABRT"],
    ["engine-failure: timeout"], ["protocol-error: ..."]. *)

val verdict_failure : verdict -> Dmc_util.Budget.failure option
(** The non-[Done] verdicts mapped into the PR-1 failure taxonomy, so
    callers can record a pool verdict in an existing degradation
    ladder: [Timed_out] is [Timeout], [Crashed]/[Worker_protocol_error]
    are [Internal] (with the signal or protocol detail), and
    [Engine_failure] carries its own failure through. *)

(** {1 Streaming handle}

    The batch {!run} below is the right shape for a driver that knows
    its whole job list up front.  A daemon does not: queries arrive one
    at a time and its event loop must keep accepting connections while
    workers grind.  The handle API exposes the same supervised pool —
    identical deadline enforcement, retry/backoff, verdict
    classification and fault injection, because {!run} itself is a
    driver over this state — as three primitives a caller can embed in
    its own [select] loop: {!submit} a job, {!watch_fds} to fold worker
    pipes into the caller's select set, {!step} to advance supervision
    one bounded iteration. *)

type 'a t

val create :
  ?ordered:bool ->
  ?hosts:Host.t list ->
  ?encode:('a -> Dmc_util.Json.t) ->
  config ->
  worker:(int -> 'a -> (Dmc_util.Json.t, Dmc_util.Budget.failure) result) ->
  on_commit:(int -> outcome -> unit) ->
  unit ->
  'a t
(** A pool with no jobs yet.  [ordered] (default [true]) selects the
    commit policy: [true] releases outcomes in submission order (the
    byte-determinism contract {!run} documents), [false] commits each
    job the moment it finalizes — what a server wants, so a fast
    query's reply never waits behind a slow unrelated one.

    [hosts] (default one local fork host of capacity [cfg.jobs])
    selects the backends; remote ({!Transport.Command}) hosts require
    [encode], the payload serializer whose JSON a [dmc worker] process
    can dispatch ([worker] itself never runs for a remote attempt —
    the remote end computes from the encoded payload, and its result
    frames are classified exactly like a fork child's).  Callers
    wanting the degrade-to-local guarantee should include a local
    host (see {!Host.normalize}); with a remote-only host set, jobs
    finalize as [Engine_failure Internal] once every backend is
    poisoned.

    [on_commit] is the commit hook; an exception it raises propagates
    out of {!step}.  Raises [Invalid_argument] if [cfg.jobs < 1], or
    if a remote host is given without [encode]. *)

val submit : 'a t -> 'a -> int
(** Enqueue a job; returns its id (sequential from 0 in submission
    order — the index [worker] and [on_commit] receive). *)

val step : ?max_wait:float -> 'a t -> unit
(** One supervision iteration: promote elapsed retry backoffs, dispatch
    queued jobs into free worker slots (unless [cfg.accept_more ()] is
    false), select on worker pipes for at most [max_wait] seconds
    (default 0.2, capped tighter by the nearest deadline or retry
    wake-up), drain output, SIGKILL attempts past their hard deadline,
    reap exited children and settle their verdicts (commit or schedule
    a retry).  Callers embedding the pool in their own event loop pass
    [~max_wait:0.] after their own select says a worker pipe (or
    nothing) is ready. *)

val watch_fds : 'a t -> Unix.file_descr list
(** The worker pipe descriptors currently worth selecting on — one per
    in-flight attempt that has not yet hit EOF.  Valid until the next
    {!step}, which may close any of them. *)

val unfinished : 'a t -> int
(** Jobs submitted but not yet final (queued, awaiting retry, or
    running) — the admission-control number: a server rejects new work
    when this exceeds its bound. *)

val running : 'a t -> int
(** In-flight worker processes (reaped-but-unsettled attempts
    included). *)

val outcome : 'a t -> int -> outcome option
(** The final outcome of job [id], or [None] while it is still
    pending (or the id was never issued). *)

val abandon : 'a t -> unit
(** SIGKILL and reap every in-flight worker, then finalize every
    non-committed job as [Engine_failure Cancelled] {e without} an
    [on_commit] call (the {!run} cancellation invariant).  The handle
    is dead afterwards: outcomes remain queryable via {!outcome}, but
    no further {!submit}/{!step} is meaningful. *)

val run :
  ?hosts:Host.t list ->
  ?encode:('a -> Dmc_util.Json.t) ->
  config ->
  worker:(int -> 'a -> (Dmc_util.Json.t, Dmc_util.Budget.failure) result) ->
  ?on_result:(int -> outcome -> unit) ->
  'a list ->
  outcome array
(** [run cfg ~worker jobs] executes [worker i job_i] for each job in a
    forked child (or on a remote host — [hosts]/[encode] as in
    {!create}) and returns one outcome per job, in submission order.

    [worker] runs {e in the child} (after the fork it sees a copy of
    the parent's full state, so closures need no serialization); its
    result crosses back as one IPC frame.  An exception escaping
    [worker] is mapped like {!Dmc_core.Bounds.Engine.run} would:
    [Budget.Exhausted]/[Internal_error] to their failures,
    [Stack_overflow] to [Too_large], anything else to [Internal].

    [on_result] is the in-order commit hook (checkpoint writes,
    streamed output).  It runs in the supervisor; an exception it
    raises aborts the pool (in-flight workers are killed and reaped)
    and propagates.

    If [cfg.should_stop] turns [true], in-flight workers are
    SIGKILLed and reaped, and every job past the committed prefix —
    including attempts that finished out of order behind a still-open
    gap — is reported as [Engine_failure Cancelled] {e without} an
    [on_result] call.  The invariant callers rely on: the number of
    non-[Cancelled] outcomes equals the number of [on_result] calls,
    so progress accounting always matches what checkpoints and output
    streams actually contain. *)
