module Json = Dmc_util.Json
module Budget = Dmc_util.Budget
module Ipc = Dmc_util.Ipc

type verdict =
  | Done of Json.t
  | Timed_out
  | Crashed of int
  | Engine_failure of Budget.failure
  | Worker_protocol_error of string

type outcome = {
  verdict : verdict;
  attempts : int;
  backoffs : float list;
  elapsed : float;
}

type config = {
  jobs : int;
  timeout : float option;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  faults : Fault.t list;
  should_stop : unit -> bool;
  accept_more : unit -> bool;
  on_progress : (Progress.t -> unit) option;
}

let default =
  {
    jobs = 1;
    timeout = None;
    max_retries = 2;
    backoff_base = 0.1;
    backoff_cap = 2.0;
    faults = [];
    should_stop = (fun () -> false);
    accept_more = (fun () -> true);
    on_progress = None;
  }

let is_transient = function
  | Timed_out | Crashed _ | Worker_protocol_error _ -> true
  | Done _ | Engine_failure _ -> false

let backoff_delay cfg ~job ~attempt =
  let base = min cfg.backoff_cap (cfg.backoff_base *. (2. ** float_of_int (attempt - 1))) in
  let rng = Dmc_util.Rng.create (((job + 1) * 1_000_003) + attempt) in
  base *. (1. +. Dmc_util.Rng.float rng 0.25)

let signal_name s =
  if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

(* Observability: dispatch/retry/verdict counters plus a synthetic
   ["pool.job"] span per finished attempt.  Verdict counters are
   pre-registered so the counter set (and hence the profile table) does
   not depend on which verdicts a particular run happens to produce. *)
let c_dispatch = Dmc_obs.Counter.make "pool.dispatch"
let c_retry = Dmc_obs.Counter.make "pool.retry"

let verdict_token = function
  | Done _ -> "ok"
  | Timed_out -> "timed-out"
  | Crashed _ -> "crashed"
  | Engine_failure _ -> "engine-failure"
  | Worker_protocol_error _ -> "protocol-error"

let c_verdicts =
  List.map
    (fun t -> (t, Dmc_obs.Counter.make ("pool.verdict." ^ t)))
    [ "ok"; "timed-out"; "crashed"; "engine-failure"; "protocol-error" ]

let verdict_to_string = function
  | Done _ -> "ok"
  | Timed_out -> "timed-out"
  | Crashed s -> "crashed: " ^ signal_name s
  | Engine_failure f -> "engine-failure: " ^ Budget.failure_to_string f
  | Worker_protocol_error msg -> "protocol-error: " ^ msg

let verdict_failure = function
  | Done _ -> None
  | Timed_out -> Some Budget.Timeout
  | Crashed s -> Some (Budget.Internal ("worker crashed: " ^ signal_name s))
  | Engine_failure f -> Some f
  | Worker_protocol_error msg ->
      Some (Budget.Internal ("worker protocol error: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Child side                                                          *)

(* The child writes exactly one frame on [w] and _exits — never
   [exit], which would run the parent's [at_exit] hooks and flush a
   copy of any buffered parent output. *)
let child_body cfg ~worker ~payload ~job ~attempt w =
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  (match Fault.applies cfg.faults ~job ~attempt with
  | Some Fault.Hang ->
      (* Non-cooperative by construction: only the supervisor's
         SIGKILL ends this attempt. *)
      while true do
        Unix.sleepf 3600.
      done
  | Some Fault.Abort ->
      Sys.set_signal Sys.sigabrt Sys.Signal_default;
      Unix.kill (Unix.getpid ()) Sys.sigabrt
  | Some Fault.Garbage ->
      (try
         ignore (Unix.write_substring w "*** not an ipc frame ***" 0 24)
       with Unix.Unix_error _ -> ())
  | None ->
      (* Start from a clean registry (fork inherited the parent's spans
         and counts) but keep the parent's epoch, so the snapshot's
         timestamps land on the supervisor's timeline. *)
      Dmc_obs.Registry.child_reset ();
      (match cfg.on_progress with
      | Some _ ->
          (* Heartbeats ride the result pipe as extra frames ahead of
             the result: span closes in the engines become rate-limited
             phase ticks.  Spans only record when the registry is on,
             so progress implies an enabled child registry; the parent
             ignores the resulting snapshot unless it is profiling. *)
          Dmc_obs.Registry.set_enabled true;
          let last_hb = ref neg_infinity in
          let send phase =
            let t = Unix.gettimeofday () in
            if t -. !last_hb >= 0.15 then begin
              last_hb := t;
              try
                Ipc.write_frame w
                  (Json.Obj [ ("hb", Json.Obj [ ("phase", Json.String phase) ]) ])
              with Unix.Unix_error _ -> ()
            end
          in
          send "start";
          Dmc_obs.Registry.on_span_close := Some send
      | None -> ());
      let result =
        try worker job payload with
        | Budget.Exhausted f -> Error f
        | Budget.Internal_error { where; details } ->
            Error (Budget.Internal (where ^ ": " ^ details))
        | Stack_overflow ->
            Error (Budget.Too_large "worker recursion exceeded the OCaml stack")
        | e -> Error (Budget.Internal ("worker raised: " ^ Printexc.to_string e))
      in
      let frame =
        match result with
        | Ok v -> Json.Obj [ ("ok", v) ]
        | Error f -> Json.Obj [ ("err", Json.String (Budget.failure_to_string f)) ]
      in
      let frame =
        (* The span/counter snapshot rides in the same result frame; the
           supervisor merges it under this job's tid.  Engine failures
           keep their snapshot too — failed rungs must still appear in
           the trace. *)
        match frame with
        | Json.Obj fields when Dmc_obs.Registry.is_enabled () ->
            Json.Obj (fields @ [ ("obs", Dmc_obs.Registry.snapshot_json ()) ])
        | other -> other
      in
      (try Ipc.write_frame w frame with Unix.Unix_error _ -> ()));
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Supervisor side                                                     *)

type slot = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  job : int;
  attempt : int;
  deadline : float option;
  started : float; (* registry clock, microseconds; 0 when obs is off *)
  mutable eof : bool;
  mutable status : Unix.process_status option;
  mutable timeout_killed : bool;
  mutable off : int; (* frames before this buffer offset are consumed *)
  mutable phase : string; (* last heartbeat phase *)
  mutable result : Json.t option; (* first non-heartbeat frame *)
}

type job_state = Queued | Waiting of float | Running | Final of outcome

let flush_parent_output () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let spawn cfg ~worker ~payload ~job ~attempt =
  let r, w = Unix.pipe ~cloexec:false () in
  flush_parent_output ();
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      child_body cfg ~worker ~payload ~job ~attempt w
  | pid ->
      Unix.close w;
      {
        pid;
        fd = r;
        buf = Buffer.create 256;
        job;
        attempt;
        deadline = Option.map (fun t -> Budget.now () +. t) cfg.timeout;
        started =
          (if Dmc_obs.Registry.is_enabled () then Dmc_obs.Registry.now_us ()
           else 0.);
        eof = false;
        status = None;
        timeout_killed = false;
        off = 0;
        phase = "";
        result = None;
      }

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_blocking slot =
  if slot.status = None then begin
    let rec go () =
      match Unix.waitpid [] slot.pid with
      | _, st -> slot.status <- Some st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          slot.status <- Some (Unix.WEXITED 127)
    in
    go ()
  end;
  if not slot.eof then begin
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    slot.eof <- true
  end

(* Record a finished attempt in the registry: bump the verdict counter,
   merge the child's snapshot under this job's tid and close the
   synthetic per-attempt span. *)
let record_attempt slot verdict obs =
  if Dmc_obs.Registry.is_enabled () then begin
    let tid = slot.job + 1 in
    (match List.assoc_opt (verdict_token verdict) c_verdicts with
    | Some c -> Dmc_obs.Counter.incr c
    | None -> ());
    (match obs with
    | Some snap -> Dmc_obs.Registry.merge_snapshot ~tid snap
    | None -> ());
    Dmc_obs.Registry.add_event ~name:"pool.job"
      ~attrs:
        [
          ("job", string_of_int slot.job);
          ("attempt", string_of_int slot.attempt);
          ("verdict", verdict_to_string verdict);
        ]
      ~ts_us:slot.started
      ~dur_us:(Dmc_obs.Registry.now_us () -. slot.started)
      ~tid ()
  end

(* Consume complete frames from the slot buffer as they arrive.
   Heartbeat frames ([{"hb": {...}}]) update the phase and are
   discarded; the first anything-else frame is the attempt's result.
   On an undecodable prefix (bad header, oversized length, non-JSON
   payload) consumption simply stops: [classify] re-decodes the
   leftover bytes with [Ipc.decode_frame] and reports the precise
   protocol error, exactly as it did before heartbeats existed. *)
let consume_frames slot =
  let continue = ref true in
  while !continue do
    continue := false;
    let avail = Buffer.length slot.buf - slot.off in
    if slot.result = None && avail >= Ipc.header_bytes then
      match Ipc.parse_header (Buffer.sub slot.buf slot.off Ipc.header_bytes) with
      | Error _ -> ()
      | Ok plen ->
          if avail - Ipc.header_bytes >= plen then begin
            let payload =
              Buffer.sub slot.buf (slot.off + Ipc.header_bytes) plen
            in
            match Ipc.parse_payload payload with
            | Error _ -> ()
            | Ok json ->
                slot.off <- slot.off + Ipc.header_bytes + plen;
                continue := true;
                (match json with
                | Json.Obj [ ("hb", Json.Obj hb) ] -> (
                    match List.assoc_opt "phase" hb with
                    | Some (Json.String p) -> slot.phase <- p
                    | _ -> ())
                | other -> slot.result <- Some other)
          end
  done

(* Classify a finished attempt.  [timeout_killed] wins over the exit
   status (a SIGKILLed worker also reports WSIGNALED sigkill).  An
   ["obs"] field in the result frame is the worker's instrumentation
   snapshot, not part of the result proper — it is split off before the
   shape check and merged into the supervisor's registry. *)
let classify slot =
  consume_frames slot;
  let verdict, obs =
    if slot.timeout_killed then (Timed_out, None)
    else
      match slot.status with
      | Some (Unix.WSIGNALED s) -> (Crashed s, None)
      | Some (Unix.WSTOPPED s) -> (Crashed s, None)
      | Some (Unix.WEXITED code) -> (
          let leftover = Buffer.length slot.buf - slot.off in
          let decoded =
            match slot.result with
            | Some json ->
                if leftover > 0 then
                  Error
                    (Ipc.Malformed
                       (Printf.sprintf "%d trailing bytes after the frame"
                          leftover))
                else Ok json
            | None -> Ipc.decode_frame (Buffer.sub slot.buf slot.off leftover)
          in
          match decoded with
          | Ok (Json.Obj fields) -> (
              let obs = List.assoc_opt "obs" fields in
              match List.filter (fun (k, _) -> k <> "obs") fields with
              | [ ("ok", payload) ] -> (Done payload, obs)
              | [ ("err", Json.String f) ] -> (
                  ( (match Budget.failure_of_string f with
                    | Some failure -> Engine_failure failure
                    | None ->
                        Worker_protocol_error ("unknown failure token: " ^ f)),
                    obs ))
              | _ -> (Worker_protocol_error "unexpected result-frame shape", None)
              )
          | Ok _ -> (Worker_protocol_error "unexpected result-frame shape", None)
          | Error e ->
              let detail = Ipc.read_error_to_string e in
              ( Worker_protocol_error
                  (if code = 0 then detail
                   else Printf.sprintf "%s (exit code %d)" detail code),
                None ))
      | None ->
          (Worker_protocol_error "attempt finalized before being reaped", None)
  in
  record_attempt slot verdict obs;
  verdict

let run cfg ~worker ?(on_result = fun _ _ -> ()) jobs =
  if cfg.jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  let payloads = Array.of_list jobs in
  let n = Array.length payloads in
  let state = Array.make n Queued in
  let attempts = Array.make n 0 in
  let backoffs = Array.make n [] in
  let first_dispatch = Array.make n nan in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i queue
  done;
  let in_flight = ref [] in
  let committed = ref 0 in
  let run_started = Budget.now () in
  let retries = ref 0 in
  let last_progress = ref neg_infinity in
  (* At most ~4 callbacks a second, however fast the loop spins: the
     renderer writes to stderr and the RSS sampling reads /proc, both
     of which would otherwise dominate a pool of short jobs. *)
  let emit_progress () =
    match cfg.on_progress with
    | None -> ()
    | Some f ->
        let now = Budget.now () in
        if now -. !last_progress >= 0.25 then begin
          last_progress := now;
          let finished = ref 0 and waiting = ref 0 in
          Array.iter
            (function
              | Final _ -> incr finished
              | Queued | Waiting _ -> incr waiting
              | Running -> ())
            state;
          let running =
            List.rev_map
              (fun s ->
                { Progress.job = s.job; attempt = s.attempt; phase = s.phase })
              !in_flight
          in
          let elapsed = now -. run_started in
          let eta =
            if !finished = 0 then None
            else
              Some
                (elapsed *. float_of_int (n - !finished)
                /. float_of_int !finished)
          in
          let rss_bytes =
            Progress.rss_of_pids
              (Unix.getpid () :: List.map (fun s -> s.pid) !in_flight)
          in
          f
            {
              Progress.total = n;
              finished = !finished;
              running;
              waiting = !waiting;
              retries = !retries;
              elapsed;
              eta;
              rss_bytes;
            }
        end
  in
  (* Commit the finalized prefix, in submission order. *)
  let commit () =
    let continue = ref true in
    while !continue && !committed < n do
      match state.(!committed) with
      | Final outcome ->
          on_result !committed outcome;
          incr committed
      | _ -> continue := false
    done
  in
  let finalize job verdict =
    let elapsed = Budget.now () -. first_dispatch.(job) in
    state.(job) <-
      Final
        {
          verdict;
          attempts = attempts.(job);
          backoffs = List.rev backoffs.(job);
          elapsed;
        };
    commit ()
  in
  let settle job verdict =
    if is_transient verdict && attempts.(job) <= cfg.max_retries then begin
      Dmc_obs.Counter.incr c_retry;
      incr retries;
      let delay = backoff_delay cfg ~job ~attempt:attempts.(job) in
      backoffs.(job) <- delay :: backoffs.(job);
      state.(job) <- Waiting (Budget.now () +. delay)
    end
    else finalize job verdict
  in
  let dispatch job =
    Dmc_obs.Counter.incr c_dispatch;
    attempts.(job) <- attempts.(job) + 1;
    if attempts.(job) = 1 then first_dispatch.(job) <- Budget.now ();
    state.(job) <- Running;
    let slot =
      spawn cfg ~worker ~payload:payloads.(job) ~job ~attempt:attempts.(job)
    in
    in_flight := slot :: !in_flight
  in
  (* Mark every job past the committed prefix as cancelled, without an
     [on_result] call.  This includes attempts that finished out of
     order behind a still-open gap: their result was never committed,
     so reporting it as anything but [Cancelled] would let a caller
     count work that no checkpoint or output stream contains — the
     committed prefix is the only durable truth, and a resume reruns
     everything after it. *)
  let cancel_unfinished () =
    for i = !committed to n - 1 do
      let elapsed =
        let t = first_dispatch.(i) in
        if Float.is_nan t then 0. else Budget.now () -. t
      in
      state.(i) <-
        Final
          {
            verdict = Engine_failure Budget.Cancelled;
            attempts = attempts.(i);
            backoffs = List.rev backoffs.(i);
            elapsed;
          }
    done
  in
  let abandon () =
    List.iter
      (fun slot ->
        kill_quietly slot.pid;
        reap_blocking slot)
      !in_flight;
    in_flight := [];
    cancel_unfinished ()
  in
  let stopped = ref false in
  let finally () = if !in_flight <> [] then abandon () in
  Fun.protect ~finally (fun () ->
      while !committed < n && not !stopped do
        if cfg.should_stop () then begin
          abandon ();
          stopped := true
        end
        else if (not (cfg.accept_more ())) && !in_flight = [] then begin
          (* Draining finished: every started attempt has settled;
             whatever never started stays undone. *)
          cancel_unfinished ();
          stopped := true
        end
        else begin
          let now = Budget.now () in
          (* Promote retry-waits whose backoff has elapsed. *)
          Array.iteri
            (fun i st ->
              match st with
              | Waiting t when t <= now ->
                  state.(i) <- Queued;
                  Queue.add i queue
              | _ -> ())
            state;
          (* Fill free worker slots (unless draining). *)
          while
            cfg.accept_more ()
            && List.length !in_flight < cfg.jobs
            && not (Queue.is_empty queue)
          do
            dispatch (Queue.take queue)
          done;
          (* Pick the select timeout: nearest attempt deadline, nearest
             retry wake-up, capped so should_stop is polled promptly. *)
          let timeout =
            let horizon = ref 0.2 in
            let shrink t = if t -. now < !horizon then horizon := t -. now in
            List.iter
              (fun slot -> Option.iter shrink slot.deadline)
              !in_flight;
            Array.iter
              (function Waiting t -> shrink t | _ -> ())
              state;
            Float.max 0.0 !horizon
          in
          let watched = List.filter (fun s -> not s.eof) !in_flight in
          let readable =
            if watched = [] then (
              if !in_flight = [] && Queue.is_empty queue then
                (* only Waiting jobs remain: sleep out the backoff *)
                ignore (Unix.select [] [] [] timeout : _ * _ * _);
              [])
            else
              match
                Unix.select (List.map (fun s -> s.fd) watched) [] [] timeout
              with
              | fds, _, _ -> fds
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          (* Drain readable pipes.  Iterate [watched] — the exact slots
             select looked at — not [in_flight]: a slot that already hit
             EOF lingers in [in_flight] until its child is reaped, its
             closed fd *number* can be reused by a newly spawned pipe,
             and matching on the stale slot would read the new worker's
             bytes into the wrong buffer (or close the live fd out from
             under the next select). *)
          List.iter
            (fun slot ->
              if List.memq slot.fd readable then begin
                let chunk = Bytes.create 65536 in
                match Unix.read slot.fd chunk 0 65536 with
                | 0 ->
                    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
                    slot.eof <- true
                | k ->
                    Buffer.add_subbytes slot.buf chunk 0 k;
                    consume_frames slot
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              end)
            watched;
          (* Enforce hard deadlines. *)
          let now = Budget.now () in
          List.iter
            (fun slot ->
              match slot.deadline with
              | Some d when now > d && not slot.timeout_killed ->
                  slot.timeout_killed <- true;
                  kill_quietly slot.pid
              | _ -> ())
            !in_flight;
          (* Reap exited children without blocking. *)
          List.iter
            (fun slot ->
              if slot.status = None then
                match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
                | 0, _ -> ()
                | _, st -> slot.status <- Some st
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                    slot.status <- Some (Unix.WEXITED 127))
            !in_flight;
          (* A reaped child closes its pipe on exit; drain what's left
             and settle the attempt. *)
          let done_, still =
            List.partition
              (fun slot ->
                match slot.status with
                | Some _ when not slot.eof ->
                    (* Reaped but EOF not yet seen: consume the
                       remainder now — the write side is closed, so
                       this terminates. *)
                    let rec drain () =
                      let chunk = Bytes.create 65536 in
                      match Unix.read slot.fd chunk 0 65536 with
                      | 0 -> ()
                      | k ->
                          Buffer.add_subbytes slot.buf chunk 0 k;
                          drain ()
                      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                          drain ()
                    in
                    drain ();
                    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
                    slot.eof <- true;
                    true
                | Some _ -> true
                | None -> false)
              !in_flight
          in
          in_flight := still;
          List.iter (fun slot -> settle slot.job (classify slot)) done_;
          emit_progress ()
        end
      done);
  Array.map
    (function
      | Final o -> o
      | Queued | Waiting _ | Running ->
          (* unreachable: the loop exits only when all jobs are final
             or abandon() finalized them *)
          {
            verdict = Engine_failure Budget.Cancelled;
            attempts = 0;
            backoffs = [];
            elapsed = 0.;
          })
    state
