module Json = Dmc_util.Json
module Budget = Dmc_util.Budget
module Ipc = Dmc_util.Ipc

type verdict =
  | Done of Json.t
  | Timed_out
  | Crashed of int
  | Engine_failure of Budget.failure
  | Worker_protocol_error of string

type outcome = {
  verdict : verdict;
  attempts : int;
  backoffs : float list;
  elapsed : float;
}

type config = {
  jobs : int;
  timeout : float option;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  faults : Fault.t list;
  should_stop : unit -> bool;
  accept_more : unit -> bool;
  on_progress : (Progress.t -> unit) option;
  postmortem_dir : string option;
}

let default =
  {
    jobs = 1;
    timeout = None;
    max_retries = 2;
    backoff_base = 0.1;
    backoff_cap = 2.0;
    faults = [];
    should_stop = (fun () -> false);
    accept_more = (fun () -> true);
    on_progress = None;
    postmortem_dir = None;
  }

let is_transient = function
  | Timed_out | Crashed _ | Worker_protocol_error _ -> true
  | Done _ | Engine_failure _ -> false

let backoff_delay cfg ~job ~attempt =
  let base = min cfg.backoff_cap (cfg.backoff_base *. (2. ** float_of_int (attempt - 1))) in
  let rng = Dmc_util.Rng.create (((job + 1) * 1_000_003) + attempt) in
  base *. (1. +. Dmc_util.Rng.float rng 0.25)

let signal_name s =
  if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

(* Observability: dispatch/retry/verdict counters plus a synthetic
   ["pool.job"] span per finished attempt.  Verdict counters are
   pre-registered so the counter set (and hence the profile table) does
   not depend on which verdicts a particular run happens to produce. *)
let c_dispatch = Dmc_obs.Counter.make "pool.dispatch"
let c_retry = Dmc_obs.Counter.make "pool.retry"
let c_reshard = Dmc_obs.Counter.make "pool.reshard"

let verdict_token = function
  | Done _ -> "ok"
  | Timed_out -> "timed-out"
  | Crashed _ -> "crashed"
  | Engine_failure _ -> "engine-failure"
  | Worker_protocol_error _ -> "protocol-error"

let c_verdicts =
  List.map
    (fun t -> (t, Dmc_obs.Counter.make ("pool.verdict." ^ t)))
    [ "ok"; "timed-out"; "crashed"; "engine-failure"; "protocol-error" ]

let verdict_to_string = function
  | Done _ -> "ok"
  | Timed_out -> "timed-out"
  | Crashed s -> "crashed: " ^ signal_name s
  | Engine_failure f -> "engine-failure: " ^ Budget.failure_to_string f
  | Worker_protocol_error msg -> "protocol-error: " ^ msg

let verdict_failure = function
  | Done _ -> None
  | Timed_out -> Some Budget.Timeout
  | Crashed s -> Some (Budget.Internal ("worker crashed: " ^ signal_name s))
  | Engine_failure f -> Some f
  | Worker_protocol_error msg ->
      Some (Budget.Internal ("worker protocol error: " ^ msg))

(* Fleet telemetry: every host is a trace lane (a Chrome-trace [pid]);
   lease grants, quarantines and re-shards land on that lane as
   instant events, and the same moments feed the flight-recorder ring
   so a postmortem shows what the fleet was doing just before a crash.
   All of it is span-side — wall-clock, outside the determinism
   contract — and gated on the registry being enabled. *)
let instant ~name ~host attrs =
  if Dmc_obs.Registry.is_enabled () then
    Dmc_obs.Registry.add_event ~name
      ~attrs:(("ph", "i") :: ("host", host.Host.name) :: attrs)
      ~ts_us:(Dmc_obs.Registry.now_us ())
      ~dur_us:0.
      ~src:(Dmc_obs.Registry.source host.Host.name)
      ()

(* ------------------------------------------------------------------ *)
(* Child side (fork transport)                                         *)

(* The child writes exactly one frame on [w] and [Unix._exit]s — never
   [exit], which would run the parent's [at_exit] hooks and flush a
   copy of any buffered parent output.  The attempt body itself (fault
   handling, heartbeats, exception mapping, the result frame) is shared
   with [dmc worker] in {!Transport.attempt_body}. *)
let child_body cfg ~worker ~payload ~job ~fault w =
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  (* Start from a clean registry (fork inherited the parent's spans
     and counts) but keep the parent's epoch, so the snapshot's
     timestamps land on the supervisor's timeline. *)
  Dmc_obs.Registry.child_reset ();
  Transport.attempt_body ~fault
    ~hb:(cfg.on_progress <> None)
    ~output:w
    (fun () -> worker job payload);
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Supervisor side                                                     *)

type slot = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  job : int;
  attempt : int;
  shost : Host.t;
  deadline : float option;
  started : float; (* registry clock, microseconds; 0 when obs is off *)
  mutable eof : bool;
  mutable status : Unix.process_status option;
  mutable timeout_killed : bool;
  mutable resharded : bool;
      (* the supervisor took the lease back (host quarantined under it)
         and killed the attempt: refund, requeue, don't judge the job *)
  mutable off : int; (* frames before this buffer offset are consumed *)
  mutable phase : string; (* last heartbeat phase *)
  mutable result : Json.t option; (* first non-heartbeat frame *)
}

type job_state = Queued | Waiting of float | Running | Final of outcome

type job_rec = {
  jid : int;
  mutable jstate : job_state;
  mutable jattempts : int;
  mutable jreshards : int; (* refunded attempts taken back from bad hosts *)
  mutable jbackoffs : float list; (* newest first *)
  mutable jfirst : float; (* first-dispatch instant; nan until then *)
}

(* A streaming pool: jobs arrive one at a time ([submit]) and the
   supervision loop advances one bounded iteration at a time ([step]),
   so a long-running caller — the [dmc serve] connection loop — can
   multiplex worker supervision with its own descriptors.  The batch
   [run] below is a driver over this same state, so both paths share
   every supervision invariant (hard deadlines, retry backoff, verdict
   classification, fault injection). *)
type 'a t = {
  cfg : config;
  run_id : string;
      (* trace-context run id: ties a remote worker's frames to this
         pool instance; wall-clock domain, outside determinism *)
  worker : int -> 'a -> (Json.t, Budget.failure) result;
  encode : ('a -> Json.t) option;
  hosts : Host.t list;
  reshard_cap : int;
  on_commit : int -> outcome -> unit;
  ordered : bool;
  jobs : (int, job_rec) Hashtbl.t;
  payloads : (int, 'a) Hashtbl.t;
  queue : int Queue.t;
  mutable in_flight : slot list;
  mutable next_id : int;  (* ids handed out so far *)
  mutable next_commit : int;  (* ordered mode: first uncommitted id *)
  mutable not_final : int;  (* jobs whose state is not yet Final *)
  mutable retries_total : int;
  started : float;
  mutable last_progress : float;
}

let flush_parent_output () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let worker_fault cfg ~job ~attempt =
  (* Server-loop fault kinds (drop/truncate/slow) are not worker
     faults: a spec can drive the connection loop and the pool from the
     same string, so attempts only honour their own kinds. *)
  match Fault.applies cfg.faults ~job ~attempt with
  | Some k when Fault.is_worker_kind k -> Some k
  | Some _ | None -> None

let spawn t ~host ~job ~attempt =
  let cfg = t.cfg in
  let fault = worker_fault cfg ~job ~attempt in
  let pid, fd =
    match host.Host.transport with
    | Transport.Fork -> (
        let payload = Hashtbl.find t.payloads job in
        let r, w = Unix.pipe ~cloexec:false () in
        flush_parent_output ();
        match Unix.fork () with
        | 0 ->
            Unix.close r;
            child_body cfg ~worker:t.worker ~payload ~job ~fault w
        | pid ->
            Unix.close w;
            (pid, r))
    | Transport.Command { argv } ->
        let encode =
          match t.encode with
          | Some e -> e
          | None ->
              (* create/run refuse remote hosts without an encoder, so
                 this is unreachable; fail loudly if the invariant
                 breaks rather than ship a garbage frame. *)
              invalid_arg "Pool: remote host without an encoder"
        in
        let payload = encode (Hashtbl.find t.payloads job) in
        let envelope =
          Transport.envelope ~hb:(cfg.on_progress <> None)
            ~obs:(Dmc_obs.Registry.is_enabled ())
            ~trace:
              {
                Transport.run = t.run_id;
                host = host.Host.name;
                lease = Printf.sprintf "%d:%d" job attempt;
              }
            ~fault payload
        in
        let proc = Transport.spawn_command ~argv ~envelope in
        (proc.Transport.pid, proc.Transport.fd)
  in
  {
    pid;
    fd;
    buf = Buffer.create 256;
    job;
    attempt;
    shost = host;
    deadline = Option.map (fun tmo -> Budget.now () +. tmo) cfg.timeout;
    started =
      (if Dmc_obs.Registry.is_enabled () then Dmc_obs.Registry.now_us ()
       else 0.);
    eof = false;
    status = None;
    timeout_killed = false;
    resharded = false;
    off = 0;
    phase = "";
    result = None;
  }

(* [pid <= 0] marks an attempt whose transport never started (command
   spawn failure): there is no process to signal or reap, and passing 0
   to kill/waitpid would address the whole process group. *)
let kill_quietly pid =
  if pid > 0 then try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_blocking slot =
  if slot.status = None then
    if slot.pid <= 0 then slot.status <- Some (Unix.WEXITED 127)
    else begin
      let rec go () =
        match Unix.waitpid [] slot.pid with
        | _, st -> slot.status <- Some st
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            slot.status <- Some (Unix.WEXITED 127)
      in
      go ()
    end;
  if not slot.eof then begin
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    slot.eof <- true
  end

(* Record a finished attempt in the registry: bump the verdict counter,
   merge the child's snapshot under this job's tid and close the
   synthetic per-attempt span. *)
let record_attempt slot verdict obs =
  if Dmc_obs.Registry.is_enabled () then begin
    let tid = slot.job + 1 in
    (match List.assoc_opt (verdict_token verdict) c_verdicts with
    | Some c -> Dmc_obs.Counter.incr c
    | None -> ());
    (match obs with
    | Some snap ->
        (* The worker's spans land on its host's lane.  A fork child
           shares the supervisor's epoch, so its timestamps are already
           on our timeline; a command worker is a fresh process whose
           epoch is its own start — shift by the dispatch instant. *)
        let shift_us = if Host.is_remote slot.shost then slot.started else 0. in
        Dmc_obs.Registry.merge_snapshot ~tid
          ~src:(Dmc_obs.Registry.source slot.shost.Host.name)
          ~shift_us snap
    | None -> ());
    Dmc_obs.Registry.flight_note ~kind:"verdict" ~name:(verdict_to_string verdict)
      ~detail:
        (Printf.sprintf "job %d attempt %d @%s" slot.job slot.attempt
           slot.shost.Host.name);
    Dmc_obs.Registry.add_event ~name:"pool.job"
      ~attrs:
        [
          ("job", string_of_int slot.job);
          ("attempt", string_of_int slot.attempt);
          ("host", slot.shost.Host.name);
          ("verdict", verdict_to_string verdict);
        ]
      ~ts_us:slot.started
      ~dur_us:(Dmc_obs.Registry.now_us () -. slot.started)
      ~tid ()
  end

(* Consume complete frames from the slot buffer as they arrive.
   Heartbeat frames ([{"hb": {...}}]) update the phase and are
   discarded; the first anything-else frame is the attempt's result.
   On an undecodable prefix (bad header, oversized length, non-JSON
   payload) consumption simply stops: [classify] re-decodes the
   leftover bytes with [Ipc.decode_frame] and reports the precise
   protocol error, exactly as it did before heartbeats existed. *)
let consume_frames slot =
  let continue = ref true in
  while !continue do
    continue := false;
    let avail = Buffer.length slot.buf - slot.off in
    if slot.result = None && avail >= Ipc.header_bytes then
      match Ipc.parse_header (Buffer.sub slot.buf slot.off Ipc.header_bytes) with
      | Error _ -> ()
      | Ok plen ->
          if avail - Ipc.header_bytes >= plen then begin
            let payload =
              Buffer.sub slot.buf (slot.off + Ipc.header_bytes) plen
            in
            match Ipc.parse_payload payload with
            | Error _ -> ()
            | Ok json ->
                slot.off <- slot.off + Ipc.header_bytes + plen;
                continue := true;
                (match json with
                | Json.Obj [ ("hb", Json.Obj hb) ] -> (
                    match List.assoc_opt "phase" hb with
                    | Some (Json.String p) ->
                        slot.phase <- p;
                        Dmc_obs.Registry.flight_note ~kind:"hb" ~name:p
                          ~detail:
                            (Printf.sprintf "job %d @%s" slot.job
                               slot.shost.Host.name)
                    | _ -> ())
                | other -> slot.result <- Some other)
          end
  done

(* Classify a finished attempt, plus the host-health reading of the
   same evidence.  [timeout_killed] wins over the exit status (a
   SIGKILLed worker also reports WSIGNALED sigkill).  An ["obs"] field
   in the result frame is the worker's instrumentation snapshot, not
   part of the result proper — it is split off before the shape check
   and merged into the supervisor's registry.

   The host event distinguishes a transport that {e died} (crash,
   silent exit, truncated frame — worth quarantine-and-retry) from one
   that {e lied} (bytes arrived but are not protocol — worth poisoning
   after repeats).  [Host.record] applies the distinction only to
   remote hosts; on the local fork backend every failure is the job's
   own. *)
let classify slot =
  consume_frames slot;
  let verdict, hevent, obs =
    if slot.timeout_killed then (Timed_out, Host.Deadline_kill, None)
    else
      match slot.status with
      | Some (Unix.WSIGNALED s) ->
          (Crashed s, Host.Transport_failure ("crashed: " ^ signal_name s), None)
      | Some (Unix.WSTOPPED s) ->
          (Crashed s, Host.Transport_failure ("stopped: " ^ signal_name s), None)
      | Some (Unix.WEXITED code) -> (
          let leftover = Buffer.length slot.buf - slot.off in
          let decoded =
            match slot.result with
            | Some json ->
                if leftover > 0 then
                  Error
                    (Ipc.Malformed
                       (Printf.sprintf "%d trailing bytes after the frame"
                          leftover))
                else Ok json
            | None -> Ipc.decode_frame (Buffer.sub slot.buf slot.off leftover)
          in
          match decoded with
          | Ok (Json.Obj fields) -> (
              let obs = List.assoc_opt "obs" fields in
              (* "obs" and the echoed "trace" context ride the result
                 frame but are not part of the result proper *)
              match
                List.filter (fun (k, _) -> k <> "obs" && k <> "trace") fields
              with
              | [ ("ok", payload) ] -> (Done payload, Host.Ok_result, obs)
              | [ ("err", Json.String f) ] -> (
                  match Budget.failure_of_string f with
                  | Some failure -> (Engine_failure failure, Host.Ok_result, obs)
                  | None ->
                      let msg = "unknown failure token: " ^ f in
                      (Worker_protocol_error msg, Host.Garbage msg, obs))
              | _ ->
                  let msg = "unexpected result-frame shape" in
                  (Worker_protocol_error msg, Host.Garbage msg, None))
          | Ok _ ->
              let msg = "unexpected result-frame shape" in
              (Worker_protocol_error msg, Host.Garbage msg, None)
          | Error e ->
              let detail = Ipc.read_error_to_string e in
              let msg =
                if code = 0 then detail
                else Printf.sprintf "%s (exit code %d)" detail code
              in
              let hevent =
                (* no bytes, or a frame cut mid-flight: the transport
                   died under the attempt.  Undecodable bytes that did
                   arrive: the host is emitting garbage. *)
                match e with
                | Ipc.Closed | Ipc.Truncated _ | Ipc.Timed_out _ ->
                    Host.Transport_failure msg
                | Ipc.Bad_header _ | Ipc.Oversized _ | Ipc.Malformed _ ->
                    Host.Garbage msg
              in
              (Worker_protocol_error msg, hevent, None))
      | None ->
          let msg = "attempt finalized before being reaped" in
          (Worker_protocol_error msg, Host.Transport_failure msg, None)
  in
  record_attempt slot verdict obs;
  (verdict, hevent)

(* ------------------------------------------------------------------ *)
(* Streaming handle                                                    *)

let create ?(ordered = true) ?(hosts = []) ?encode (cfg : config) ~worker
    ~on_commit () =
  if cfg.jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let hosts =
    match hosts with [] -> [ Host.local ~capacity:cfg.jobs () ] | hs -> hs
  in
  if encode = None && List.exists Host.is_remote hosts then
    invalid_arg "Pool.create: remote hosts require ~encode";
  {
    cfg;
    run_id =
      Printf.sprintf "%08x"
        (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffffff);
    worker;
    encode;
    hosts;
    (* Enough refunds for every backend to fail this job twice before
       the job itself starts paying attempts for the fleet's sins. *)
    reshard_cap = (2 * List.length hosts) + 2;
    on_commit;
    ordered;
    jobs = Hashtbl.create 64;
    payloads = Hashtbl.create 64;
    queue = Queue.create ();
    in_flight = [];
    next_id = 0;
    next_commit = 0;
    not_final = 0;
    retries_total = 0;
    started = Budget.now ();
    last_progress = neg_infinity;
  }

let submit t payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.jobs id
    {
      jid = id;
      jstate = Queued;
      jattempts = 0;
      jreshards = 0;
      jbackoffs = [];
      jfirst = nan;
    };
  Hashtbl.replace t.payloads id payload;
  Queue.add id t.queue;
  t.not_final <- t.not_final + 1;
  id

let unfinished t = t.not_final
let running t = List.length t.in_flight

let watch_fds t =
  List.filter_map
    (fun slot -> if slot.eof then None else Some slot.fd)
    t.in_flight

let outcome t id =
  match Hashtbl.find_opt t.jobs id with
  | Some { jstate = Final o; _ } -> Some o
  | Some _ | None -> None

let job_record t id =
  match Hashtbl.find_opt t.jobs id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Pool: unknown job id %d" id)

(* Mark a job final and commit whatever the ordering policy now
   allows.  Ordered mode releases the contiguous finalized prefix
   (submission-order commit — the byte-determinism contract); unordered
   mode commits immediately, which is what a server wants: a fast
   query's reply must not wait behind a slow unrelated one. *)
let make_final t r o =
  (match r.jstate with Final _ -> () | _ -> t.not_final <- t.not_final - 1);
  r.jstate <- Final o;
  if t.ordered then begin
    let continue = ref true in
    while !continue && t.next_commit < t.next_id do
      match (job_record t t.next_commit).jstate with
      | Final o ->
          let id = t.next_commit in
          (* advance before the callback: a raising on_commit must not
             re-deliver the same outcome if the caller recovers *)
          t.next_commit <- t.next_commit + 1;
          t.on_commit id o
      | _ -> continue := false
    done
  end
  else t.on_commit r.jid o

let finalize t r verdict =
  let elapsed = Budget.now () -. r.jfirst in
  make_final t r
    {
      verdict;
      attempts = r.jattempts;
      backoffs = List.rev r.jbackoffs;
      elapsed;
    }

(* Take the lease back: the attempt is not evidence about the job, so
   the attempt number is refunded and the job goes straight back into
   the queue (no backoff — the {e host} is benched, the job is not). *)
let reshard t r host =
  Dmc_obs.Counter.incr c_reshard;
  Host.note_reshard host;
  instant ~name:"host.reshard" ~host [ ("job", string_of_int r.jid) ];
  Dmc_obs.Registry.flight_note ~kind:"reshard"
    ~name:(Printf.sprintf "job %d" r.jid)
    ~detail:(Printf.sprintf "lease taken back from %s" host.Host.name);
  r.jreshards <- r.jreshards + 1;
  r.jattempts <- max 0 (r.jattempts - 1);
  r.jstate <- Queued;
  Queue.add r.jid t.queue

(* Settle one reaped attempt.  Host health is folded in first; a
   quarantine transition takes back every other lease the host still
   holds (SIGKILL now, refund at reap).  Host-attributed failures on
   remote backends refund the job's attempt — a dead machine must not
   burn the job's own retry budget — up to [reshard_cap], after which
   the ordinary transient-retry/finalize path judges the job. *)
let settle t slot (verdict, hevent) =
  let r = job_record t slot.job in
  let host = slot.shost in
  Host.release host;
  if slot.resharded then
    (* lease already taken back when the host went under; just requeue *)
    reshard t r host
  else begin
    let now = Budget.now () in
    (match Host.record host ~now hevent with
    | `Fine -> ()
    | `Quarantined ->
        instant ~name:"host.quarantine" ~host
          [
            ("verdict", Host.verdict_to_string host.Host.verdict);
            ( "until",
              if host.Host.until = infinity then "inf"
              else Printf.sprintf "+%.1fs" (host.Host.until -. now) );
            ("quarantines", string_of_int host.Host.quarantines);
          ];
        Dmc_obs.Registry.flight_note ~kind:"quarantine" ~name:host.Host.name
          ~detail:
            (Printf.sprintf "%s, quarantine %d"
               (Host.verdict_to_string host.Host.verdict)
               host.Host.quarantines);
        List.iter
          (fun s ->
            if s.shost == host && not s.resharded && s.status = None then begin
              s.resharded <- true;
              kill_quietly s.pid
            end)
          t.in_flight);
    (* Crash flight recorder: a crashed / timed-out / protocol-broken
       attempt dumps the ring (plus counters and host context) to a
       timestamped postmortem file.  Best-effort by contract — a failed
       dump warns and never perturbs supervision. *)
    (match (t.cfg.postmortem_dir, verdict) with
    | Some dir, (Timed_out | Crashed _ | Worker_protocol_error _) -> (
        match
          Dmc_obs.Flight.write ~dir
            ~slug:(Printf.sprintf "job%d-attempt%d" slot.job slot.attempt)
            ~reason:(verdict_to_string verdict)
            ~attrs:
              [
                ("run", t.run_id);
                ("job", string_of_int slot.job);
                ("attempt", string_of_int slot.attempt);
                ("host", host.Host.name);
                ("host_verdict", Host.verdict_to_string host.Host.verdict);
              ]
            ()
        with
        | Ok _ -> ()
        | Error msg ->
            Printf.eprintf "dmc: warning: postmortem dump failed: %s\n%!" msg)
    | _ -> ());
    let host_fault =
      Host.is_remote host
      &&
      match hevent with
      | Host.Transport_failure _ | Host.Garbage _ -> true
      | Host.Ok_result | Host.Deadline_kill -> false
    in
    if host_fault && r.jreshards < t.reshard_cap then reshard t r host
    else if is_transient verdict && r.jattempts <= t.cfg.max_retries then begin
      Dmc_obs.Counter.incr c_retry;
      t.retries_total <- t.retries_total + 1;
      let delay = backoff_delay t.cfg ~job:r.jid ~attempt:r.jattempts in
      r.jbackoffs <- delay :: r.jbackoffs;
      r.jstate <- Waiting (Budget.now () +. delay)
    end
    else finalize t r verdict
  end

(* Pick the host for the next dispatch: healthiest verdict class first
   (alive, then slow, then a dead host due its half-open probe), load
   ratio within a class, declaration order as the deterministic tie
   break. *)
let pick_host t ~now =
  let rank h =
    match h.Host.verdict with
    | Host.Alive -> 0
    | Host.Slow -> 1
    | Host.Dead -> 2
    | Host.Poisoned -> 3
  in
  let load h =
    float_of_int h.Host.inflight /. float_of_int h.Host.capacity
  in
  List.fold_left
    (fun best h ->
      if not (Host.available h ~now) then best
      else
        match best with
        | None -> Some h
        | Some b ->
            if
              rank h < rank b
              || (rank h = rank b && load h < load b)
            then Some h
            else best)
    None t.hosts

let dispatch t host id =
  let r = job_record t id in
  Dmc_obs.Counter.incr c_dispatch;
  r.jattempts <- r.jattempts + 1;
  if Float.is_nan r.jfirst then r.jfirst <- Budget.now ();
  r.jstate <- Running;
  Host.lease host ~now:(Budget.now ());
  instant ~name:"host.lease" ~host
    [ ("job", string_of_int id); ("attempt", string_of_int r.jattempts) ];
  Dmc_obs.Registry.flight_note ~kind:"dispatch"
    ~name:(Printf.sprintf "job %d" id)
    ~detail:(Printf.sprintf "attempt %d @%s" r.jattempts host.Host.name);
  let slot = spawn t ~host ~job:id ~attempt:r.jattempts in
  t.in_flight <- slot :: t.in_flight

(* Cancel every job past the committed point, without an [on_commit]
   call.  Ordered mode also overwrites attempts that finished out of
   order behind a still-open gap: their result was never committed, so
   reporting it as anything but [Cancelled] would let a caller count
   work that no checkpoint or output stream contains — the committed
   prefix is the only durable truth, and a resume reruns everything
   after it.  Unordered callers already committed every final job, so
   only non-final ones are touched. *)
let cancel_pending t =
  let cancel r =
    let elapsed =
      if Float.is_nan r.jfirst then 0. else Budget.now () -. r.jfirst
    in
    (match r.jstate with Final _ -> () | _ -> t.not_final <- t.not_final - 1);
    r.jstate <-
      Final
        {
          verdict = Engine_failure Budget.Cancelled;
          attempts = r.jattempts;
          backoffs = List.rev r.jbackoffs;
          elapsed;
        }
  in
  if t.ordered then
    for id = t.next_commit to t.next_id - 1 do
      cancel (job_record t id)
    done
  else
    Hashtbl.iter
      (fun _ r -> match r.jstate with Final _ -> () | _ -> cancel r)
      t.jobs;
  Queue.clear t.queue

let abandon t =
  List.iter
    (fun slot ->
      kill_quietly slot.pid;
      reap_blocking slot;
      Host.release slot.shost)
    t.in_flight;
  t.in_flight <- [];
  cancel_pending t

(* Every backend permanently benched and nothing in flight: the queue
   can never drain.  Finalize what remains with a typed failure rather
   than spin forever — reachable only when the host set has no local
   fork backend (the CLI always includes one). *)
let all_hosts_poisoned t =
  List.for_all (fun h -> h.Host.verdict = Host.Poisoned) t.hosts

let fail_unservable t =
  let fail r =
    match r.jstate with
    | Final _ | Running -> ()
    | Queued | Waiting _ ->
        finalize t r
          (Engine_failure
             (Budget.Internal "all hosts poisoned; no backend can run this job"))
  in
  Queue.clear t.queue;
  Hashtbl.iter (fun _ r -> fail r) t.jobs

(* At most ~4 callbacks a second, however fast the loop spins: the
   renderer writes to stderr and the RSS sampling reads /proc, both of
   which would otherwise dominate a pool of short jobs. *)
let emit_progress t =
  match t.cfg.on_progress with
  | None -> ()
  | Some f ->
      let now = Budget.now () in
      if now -. t.last_progress >= 0.25 then begin
        t.last_progress <- now;
        let n = t.next_id in
        let finished = ref 0 and waiting = ref 0 in
        Hashtbl.iter
          (fun _ r ->
            match r.jstate with
            | Final _ -> incr finished
            | Queued | Waiting _ -> incr waiting
            | Running -> ())
          t.jobs;
        let running =
          List.rev_map
            (fun s ->
              {
                Progress.job = s.job;
                attempt = s.attempt;
                phase = s.phase;
                host = s.shost.Host.name;
              })
            t.in_flight
        in
        let elapsed = now -. t.started in
        let eta =
          if !finished = 0 then None
          else
            Some
              (elapsed *. float_of_int (n - !finished) /. float_of_int !finished)
        in
        let rss_bytes =
          Progress.rss_of_pids
            (Unix.getpid ()
            :: List.filter_map
                 (fun s -> if s.pid > 0 then Some s.pid else None)
                 t.in_flight)
        in
        f
          {
            Progress.total = n;
            finished = !finished;
            running;
            waiting = !waiting;
            retries = t.retries_total;
            elapsed;
            eta;
            rss_bytes;
          }
      end

(* One bounded supervision iteration: promote elapsed retry-waits,
   fill free worker slots (unless the config is draining), select on
   the worker pipes for at most [max_wait] seconds (capped tighter by
   the nearest deadline, retry wake-up or quarantine expiry), drain
   readable pipes, enforce hard deadlines, reap exited children and
   settle their attempts.  Callers embedding the pool in their own
   event loop pass [~max_wait:0.] after their own select; the batch
   driver uses the default. *)
let step ?(max_wait = 0.2) t =
  let now = Budget.now () in
  (* Promote retry-waits whose backoff has elapsed. *)
  Hashtbl.iter
    (fun id r ->
      match r.jstate with
      | Waiting tm when tm <= now ->
          r.jstate <- Queued;
          Queue.add id t.queue
      | _ -> ())
    t.jobs;
  (* Fill free leases (unless draining).  The loop ends when the queue
     empties or no host can take another lease right now. *)
  let continue = ref true in
  while !continue && t.cfg.accept_more () && not (Queue.is_empty t.queue) do
    match pick_host t ~now with
    | Some h -> dispatch t h (Queue.take t.queue)
    | None ->
        continue := false;
        if t.in_flight = [] && all_hosts_poisoned t then fail_unservable t
  done;
  (* Pick the select timeout: nearest attempt deadline, nearest retry
     wake-up, nearest quarantine expiry (when work is queued), capped
     so the caller's stop conditions are polled promptly. *)
  let timeout =
    let horizon = ref max_wait in
    let shrink tm = if tm -. now < !horizon then horizon := tm -. now in
    List.iter (fun slot -> Option.iter shrink slot.deadline) t.in_flight;
    Hashtbl.iter
      (fun _ r -> match r.jstate with Waiting tm -> shrink tm | _ -> ())
      t.jobs;
    if not (Queue.is_empty t.queue) then
      List.iter (fun h -> Option.iter shrink (Host.next_wakeup h)) t.hosts;
    Float.max 0.0 !horizon
  in
  let watched = List.filter (fun s -> not s.eof) t.in_flight in
  let readable =
    if watched = [] then (
      if t.in_flight = [] then
        (* only Waiting jobs (or a queue blocked on quarantined hosts)
           remain: sleep out the nearest wake-up *)
        ignore (Unix.select [] [] [] timeout : _ * _ * _);
      [])
    else
      match Unix.select (List.map (fun s -> s.fd) watched) [] [] timeout with
      | fds, _, _ -> fds
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  (* Drain readable pipes.  Iterate [watched] — the exact slots select
     looked at — not [in_flight]: a slot that already hit EOF lingers
     in [in_flight] until its child is reaped, its closed fd *number*
     can be reused by a newly spawned pipe, and matching on the stale
     slot would read the new worker's bytes into the wrong buffer (or
     close the live fd out from under the next select). *)
  List.iter
    (fun slot ->
      if List.memq slot.fd readable then begin
        let chunk = Bytes.create 65536 in
        match Unix.read slot.fd chunk 0 65536 with
        | 0 ->
            (try Unix.close slot.fd with Unix.Unix_error _ -> ());
            slot.eof <- true
        | k ->
            Buffer.add_subbytes slot.buf chunk 0 k;
            Host.touch slot.shost ~now:(Budget.now ());
            consume_frames slot
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end)
    watched;
  (* Enforce hard deadlines. *)
  let now = Budget.now () in
  List.iter
    (fun slot ->
      match slot.deadline with
      | Some d when now > d && not slot.timeout_killed ->
          slot.timeout_killed <- true;
          kill_quietly slot.pid;
          (* a spawn-failed attempt has no process to kill: mark it
             reaped so the deadline actually ends it *)
          if slot.pid <= 0 && slot.status = None then
            slot.status <- Some (Unix.WEXITED 127)
      | _ -> ())
    t.in_flight;
  (* Reap exited children without blocking. *)
  List.iter
    (fun slot ->
      if slot.status = None then
        if slot.pid <= 0 then slot.status <- Some (Unix.WEXITED 127)
        else
          match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ -> ()
          | _, st -> slot.status <- Some st
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              slot.status <- Some (Unix.WEXITED 127))
    t.in_flight;
  (* A reaped child closes its pipe on exit; drain what's left and
     settle the attempt. *)
  let done_, still =
    List.partition
      (fun slot ->
        match slot.status with
        | Some _ when not slot.eof ->
            (* Reaped but EOF not yet seen: consume the remainder now —
               the write side is closed, so this terminates. *)
            let rec drain () =
              let chunk = Bytes.create 65536 in
              match Unix.read slot.fd chunk 0 65536 with
              | 0 -> ()
              | k ->
                  Buffer.add_subbytes slot.buf chunk 0 k;
                  drain ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
            in
            drain ();
            (try Unix.close slot.fd with Unix.Unix_error _ -> ());
            slot.eof <- true;
            true
        | Some _ -> true
        | None -> false)
      t.in_flight
  in
  t.in_flight <- still;
  List.iter (fun slot -> settle t slot (classify slot)) done_;
  emit_progress t

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)

let run ?hosts ?encode (cfg : config) ~worker ?(on_result = fun _ _ -> ())
    jobs =
  if cfg.jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  let n = List.length jobs in
  let pool = create ?hosts ?encode cfg ~worker ~on_commit:on_result () in
  List.iter (fun payload -> ignore (submit pool payload : int)) jobs;
  let stopped = ref false in
  let finally () = if pool.in_flight <> [] then abandon pool in
  Fun.protect ~finally (fun () ->
      while pool.next_commit < n && not !stopped do
        if cfg.should_stop () then begin
          abandon pool;
          stopped := true
        end
        else if (not (cfg.accept_more ())) && pool.in_flight = [] then begin
          (* Draining finished: every started attempt has settled;
             whatever never started stays undone. *)
          cancel_pending pool;
          stopped := true
        end
        else step pool
      done);
  Array.init n (fun i ->
      match outcome pool i with
      | Some o -> o
      | None ->
          (* unreachable: the loop exits only when all jobs committed
             or abandon()/cancel_pending() finalized them *)
          {
            verdict = Engine_failure Budget.Cancelled;
            attempts = 0;
            backoffs = [];
            elapsed = 0.;
          })
