type kind = Hang | Abort | Garbage | Drop | Truncate | Slow

type t = { kind : kind; job : int; attempts : int option }

let kind_to_string = function
  | Hang -> "hang"
  | Abort -> "abort"
  | Garbage -> "garbage"
  | Drop -> "drop"
  | Truncate -> "truncate"
  | Slow -> "slow"

let kind_of_string = function
  | "hang" -> Some Hang
  | "abort" -> Some Abort
  | "garbage" -> Some Garbage
  | "drop" -> Some Drop
  | "truncate" -> Some Truncate
  | "slow" -> Some Slow
  | _ -> None

let is_worker_kind = function
  | Hang | Abort | Garbage -> true
  | Drop | Truncate | Slow -> false

let to_string f =
  match f.attempts with
  | None -> Printf.sprintf "%s:%d" (kind_to_string f.kind) f.job
  | Some a -> Printf.sprintf "%s:%d:%d" (kind_to_string f.kind) f.job a

let parse_clause clause =
  let bad () = Error (Printf.sprintf "bad fault clause %S" clause) in
  match String.split_on_char ':' clause with
  | [ k; j ] | [ k; j; _ ] as parts -> (
      match (kind_of_string k, int_of_string_opt j) with
      | Some kind, Some job when job >= 1 -> (
          match parts with
          | [ _; _ ] -> Ok { kind; job; attempts = None }
          | [ _; _; a ] -> (
              match int_of_string_opt a with
              | Some n when n >= 1 -> Ok { kind; job; attempts = Some n }
              | _ -> bad ())
          | _ -> bad ())
      | _ -> bad ())
  | _ -> bad ()

let parse spec =
  let clauses =
    List.filter
      (fun c -> c <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match parse_clause c with
        | Ok f -> go (f :: acc) rest
        | Error _ as e -> e)
  in
  go [] clauses

let of_env () =
  match Sys.getenv_opt "DMC_FAULT" with
  | None | Some "" -> []
  | Some spec -> (
      match parse spec with
      | Ok faults -> faults
      | Error msg -> failwith ("DMC_FAULT: " ^ msg))

let applies faults ~job ~attempt =
  let hit f =
    f.job = job + 1
    && match f.attempts with None -> true | Some a -> attempt <= a
  in
  match List.find_opt hit faults with
  | Some f -> Some f.kind
  | None -> None
