type running = { job : int; attempt : int; phase : string; host : string }

type t = {
  total : int;
  finished : int;
  running : running list;
  waiting : int;
  retries : int;
  elapsed : float;
  eta : float option;
  rss_bytes : int option;
}

(* Resident set size from /proc/<pid>/statm: the second field is
   resident pages.  Linux-only by construction; any read or parse
   failure degrades to None rather than to an error — progress display
   must never take a run down. *)
let page_bytes = 4096

let rss_of_pid pid =
  match
    let ic = open_in (Printf.sprintf "/proc/%d/statm" pid) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> input_line ic)
  with
  | line -> (
      match String.split_on_char ' ' line with
      | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> Some (pages * page_bytes)
          | None -> None)
      | _ -> None)
  | exception _ -> None

let rss_of_pids pids =
  List.fold_left
    (fun acc pid ->
      match rss_of_pid pid with
      | Some b -> Some (Option.value acc ~default:0 + b)
      | None -> acc)
    None pids

let fmt_bytes b =
  let fb = float_of_int b in
  if b < 1 lsl 20 then Printf.sprintf "%dKiB" (b / 1024)
  else if b < 1 lsl 30 then Printf.sprintf "%.1fMiB" (fb /. (1024. *. 1024.))
  else Printf.sprintf "%.2fGiB" (fb /. (1024. *. 1024. *. 1024.))

let fmt_eta s =
  if s < 60. then Printf.sprintf "%.0fs" s
  else if s < 3600. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let render p =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "[pool] %d/%d done, %d running" p.finished p.total
       (List.length p.running));
  (match p.running with
  | { job; attempt; phase; host } :: _ ->
      Buffer.add_string b
        (Printf.sprintf " (job %d%s%s%s)" job
           (if attempt > 1 then Printf.sprintf " try %d" attempt else "")
           (if host = "" || host = "local" then "" else "@" ^ host)
           (if phase = "" then "" else ": " ^ phase))
  | [] -> ());
  Buffer.add_string b (Printf.sprintf ", %d waiting" p.waiting);
  if p.retries > 0 then Buffer.add_string b (Printf.sprintf ", %d retries" p.retries);
  (match p.eta with
  | Some s -> Buffer.add_string b (", eta " ^ fmt_eta s)
  | None -> ());
  (match p.rss_bytes with
  | Some rss -> Buffer.add_string b (", rss " ^ fmt_bytes rss)
  | None -> ());
  Buffer.contents b

(* The line is rewritten in place with CR + erase-to-EOL, and only ever
   touches stderr: stdout is part of the determinism contract
   (checkpoint replay byte-compares it), stderr is not. *)
let draw p =
  Printf.eprintf "\r%s\027[K%!" (render p)

let clear () = Printf.eprintf "\r\027[K%!"
