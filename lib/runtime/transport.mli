(** Where a pool attempt runs: the transport abstraction.

    The supervised pool ({!Pool}) historically forked every attempt.
    That backend is now one {!t} among two:

    - {!Fork} runs the pool's worker {e closure} in a forked child —
      no serialization, full access to the parent's state, the
      original byte-determinism workhorse;
    - {!Command} spawns an arbitrary argv (typically
      [ssh host dmc worker], or a local [dmc worker] in tests), writes
      the {e serialized} job to its stdin as one length-prefixed JSON
      call frame, and reads the same frames the fork backend's pipe
      carries from its stdout.

    Both speak the identical wire protocol ({!Dmc_util.Ipc}): optional
    [{"hb": ...}] heartbeat frames, then exactly one result frame
    [{"ok": payload}] or [{"err": failure}], then EOF.  The supervisor
    therefore classifies, retries and commits attempts the same way
    whichever transport produced them — the submission-order-commit
    byte-determinism contract is transport-independent. *)

type t =
  | Fork  (** run the worker closure in a forked child *)
  | Command of { argv : string array }
      (** spawn [argv]; stdin carries the call frame, stdout the
          result frames, stderr passes through to the supervisor's *)

type proc = { pid : int; fd : Unix.file_descr }
(** A spawned attempt: the local process to SIGKILL at the hard
    deadline (for [Command] that is the transport client, e.g. the
    [ssh] process) and the descriptor its result frames arrive on. *)

val name : t -> string
(** ["fork"], or the first argv word for commands. *)

val is_remote : t -> bool
(** [Command] transports are remote: their jobs cross as JSON, their
    failures are attributed to the {e host}, not the job. *)

val call_version : int

type trace = { run : string; host : string; lease : string }
(** The trace context a supervisor threads through a remote call: run
    id, the host lane the lease was granted on, and the lease id
    ([job:attempt]).  Pure telemetry — optional on the wire, ignored
    by classification — so it rides v{!call_version} envelopes without
    a version bump. *)

val envelope :
  hb:bool ->
  ?obs:bool ->
  ?trace:trace ->
  fault:Fault.kind option ->
  Dmc_util.Json.t ->
  Dmc_util.Json.t
(** Wrap a serialized job payload into the one call frame a [Command]
    worker reads from stdin:
    [{"kind": "dmc-worker-call", "v": 1, "job": payload, "hb": bool,
      "obs": bool?, "trace": {run, host, lease}?,
      "fault": "hang" | null}].  [fault] ships worker-side fault
    injection to the remote end, so chaos schedules reach every
    transport; [obs] (default false) asks the worker to enable its
    registry and attach a snapshot even when heartbeats are off — how
    a profiling supervisor gets remote counters home. *)

type call = {
  job : Dmc_util.Json.t;
  hb : bool;
  obs : bool;
  trace : trace option;
  fault : Fault.kind option;
}
(** A parsed call frame.  [obs]/[trace] default to off/absent, so old
    supervisors' envelopes still parse. *)

val parse_envelope : Dmc_util.Json.t -> (call, string) result
(** [Error] on anything that is not a v{!call_version}
    [dmc-worker-call]. *)

val spawn_command : argv:string array -> envelope:Dmc_util.Json.t -> proc
(** Start [argv] and write the call frame to its stdin (bounded: a
    worker that never reads — already dead, wedged before its first
    read — cannot stall the supervisor; the write gives up after a few
    seconds and classification reports the failure).  SIGPIPE is
    ignored process-wide on first use. *)

val attempt_body :
  fault:Fault.kind option ->
  hb:bool ->
  ?obs:bool ->
  ?trace:trace ->
  output:Unix.file_descr ->
  (unit -> (Dmc_util.Json.t, Dmc_util.Budget.failure) result) ->
  unit
(** The worker side of one attempt, shared by the fork child and the
    [dmc worker] process: honour a worker-kind fault (hang / abort /
    garbage), enable the registry when [hb] or [obs] asks for
    telemetry, optionally stream rate-limited heartbeat phase frames
    from span closes (tagged with the trace context's host/lease when
    present), run the thunk with the standard exception mapping
    ([Budget.Exhausted] / [Internal_error] / [Stack_overflow] /
    anything else), attach the obs snapshot (and echo the trace
    context) when the registry is enabled, and write the single result
    frame.  Never raises. *)

val run_call :
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  dispatch:(Dmc_util.Json.t -> (Dmc_util.Json.t, Dmc_util.Budget.failure) result) ->
  unit ->
  int
(** The whole [dmc worker] body: read one call frame from [input],
    dispatch the job, answer on [output] via {!attempt_body}.  Returns
    the process exit code (0 even for engine failures — those are
    well-formed [{"err": ...}] replies; non-zero only when the call
    frame itself was unreadable). *)
