(** Deterministic fault injection for the worker pool.

    Every supervision path in {!Pool} — the hard-deadline kill, crash
    isolation, protocol-error classification, retry with backoff — is
    reachable on demand: a fault spec makes the Nth submitted job
    hang, abort, or write garbage instead of a result frame, in the
    child only.  The supervisor never misbehaves, so tests and the CI
    smoke observe exactly the verdict each fault class must map to.

    Specs are comma-separated [kind:job] or [kind:job:attempts]
    clauses, e.g. ["hang:3"] (job 3 hangs on every attempt) or
    ["abort:2:1"] (job 2 aborts on its first attempt only, so the
    retry succeeds — the shape used to test backoff accounting).  Jobs
    are numbered from 1 in submission order. *)

type kind =
  | Hang  (** sleep forever — must surface as [Timed_out] *)
  | Abort  (** raise SIGABRT — must surface as [Crashed] *)
  | Garbage
      (** write a non-frame byte string and exit 0 — must surface as
          [Worker_protocol_error] *)
  | Drop
      (** server loop: close the accepted connection immediately — the
          client must see EOF, the daemon must keep serving *)
  | Truncate
      (** server loop: write only a prefix of the reply frame, then
          close — the client must see a typed truncation error *)
  | Slow
      (** server loop: stall before each read from the connection,
          driving the request into the per-connection read deadline *)

type t = {
  kind : kind;
  job : int;
      (** 1-based submission index (worker kinds) or 1-based accepted
          connection index (server kinds) *)
  attempts : int option;
      (** inject only while the attempt number is [<= a]; [None] means
          every attempt (the job can never succeed) *)
}

val is_worker_kind : kind -> bool
(** [Hang]/[Abort]/[Garbage] fire inside a forked pool worker;
    [Drop]/[Truncate]/[Slow] fire in the [dmc serve] connection loop.
    The pool ignores server kinds and the server ignores worker kinds
    (it forwards them to its embedded pool), so one [--fault] spec can
    drive both layers at once. *)

val parse : string -> (t list, string) result
(** Parse a spec string; [Error] names the offending clause. *)

val of_env : unit -> t list
(** Faults from the [DMC_FAULT] environment variable ([[]] when unset).
    A malformed value raises [Failure] — a typo'd fault spec silently
    injecting nothing would invalidate whatever test set it. *)

val applies : t list -> job:int -> attempt:int -> kind option
(** The fault to inject for 0-based submission index [job] on 1-based
    [attempt], if any. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string} — how a worker-call envelope ships a
    fault kind across a remote transport. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)
