module Json = Dmc_util.Json
module Budget = Dmc_util.Budget
module Ipc = Dmc_util.Ipc

type t = Fork | Command of { argv : string array }

type proc = { pid : int; fd : Unix.file_descr }

let name = function
  | Fork -> "fork"
  | Command { argv } -> if Array.length argv > 0 then argv.(0) else "command"

let is_remote = function Fork -> false | Command _ -> true

let call_version = 1

(* The trace context a supervisor threads through a remote call: which
   run, which host lane, which lease.  Pure telemetry — absent on old
   supervisors, ignored by old workers, and never consulted by
   classification — so it rides v1 envelopes as optional fields. *)
type trace = { run : string; host : string; lease : string }

let trace_json tr =
  Json.Obj
    [
      ("run", Json.String tr.run);
      ("host", Json.String tr.host);
      ("lease", Json.String tr.lease);
    ]

type call = {
  job : Json.t;
  hb : bool;
  obs : bool;
  trace : trace option;
  fault : Fault.kind option;
}

let envelope ~hb ?(obs = false) ?trace ~fault payload =
  Json.Obj
    ([
       ("kind", Json.String "dmc-worker-call");
       ("v", Json.Int call_version);
       ("job", payload);
       ("hb", Json.Bool hb);
     ]
    @ (if obs then [ ("obs", Json.Bool true) ] else [])
    @ (match trace with None -> [] | Some tr -> [ ("trace", trace_json tr) ])
    @ [
        ( "fault",
          match fault with
          | None -> Json.Null
          | Some k -> Json.String (Fault.kind_to_string k) );
      ])

let parse_envelope json =
  let str field = Option.bind (Json.mem json field) Json.as_string in
  match (str "kind", Option.bind (Json.mem json "v") Json.as_int) with
  | Some "dmc-worker-call", Some v when v = call_version -> (
      match Json.mem json "job" with
      | None -> Error "dmc-worker-call has no job"
      | Some job ->
          let flag field =
            match Option.bind (Json.mem json field) Json.as_bool with
            | Some b -> b
            | None -> false
          in
          let trace =
            match Json.mem json "trace" with
            | Some tr -> (
                let f field = Option.bind (Json.mem tr field) Json.as_string in
                match (f "run", f "host", f "lease") with
                | Some run, Some host, Some lease -> Some { run; host; lease }
                | _ -> None)
            | None -> None
          in
          let fault =
            Option.bind (str "fault") Fault.kind_of_string
            |> Option.map (fun k -> if Fault.is_worker_kind k then Some k else None)
            |> Option.join
          in
          Ok { job; hb = flag "hb"; obs = flag "obs"; trace; fault })
  | Some "dmc-worker-call", Some v ->
      Error (Printf.sprintf "dmc-worker-call v%d, this build speaks v%d" v call_version)
  | _ -> Error "not a dmc-worker-call frame"

(* A dead worker's stdin pipe raises EPIPE on write; without this the
   default SIGPIPE disposition would kill the supervisor instead.
   Process-global, forced once on the first remote spawn. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* The worker reads its call frame before doing anything else, so this
   write only ever blocks when the process is already dead or wedged —
   bound it so a broken host cannot stall dispatch.  On failure we
   simply close: classification will report whatever the worker does
   (or fails to do) next. *)
let write_deadline = 10.

let spawn_command ~argv ~envelope =
  Lazy.force ignore_sigpipe;
  (* cloexec everywhere: create_process dup2s in_r/out_w onto the
     child's stdin/stdout (clearing the flag on those), and every
     other end closes at exec — without this the child inherits the
     write end of its own stdin pipe and a worker that reads stdin to
     EOF deadlocks against itself. *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    try Unix.create_process argv.(0) argv in_r out_w Unix.stderr
    with Unix.Unix_error _ ->
      (* create_process only raises before the fork (e.g. EMFILE);
         exec failures surface as the child's exit 127.  Mimic that so
         the caller sees one failure shape. *)
      -1
  in
  Unix.close in_r;
  Unix.close out_w;
  if pid < 0 then begin
    (try Unix.close in_w with Unix.Unix_error _ -> ());
    (* a closed read end: classification reports Closed immediately *)
    (try Unix.close out_r with Unix.Unix_error _ -> ());
    let null_r, null_w = Unix.pipe ~cloexec:true () in
    Unix.close null_w;
    { pid = 0; fd = null_r }
  end
  else begin
    let frame = Ipc.encode_frame envelope in
    let total = String.length frame in
    let deadline = Unix.gettimeofday () +. write_deadline in
    Unix.set_nonblock in_w;
    let rec push off =
      if off < total then
        match Unix.write_substring in_w frame off (total - off) with
        | n -> push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining > 0. then begin
              (match Unix.select [] [ in_w ] [] remaining with
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              push off
            end
        | exception Unix.Unix_error _ -> ()
    in
    push 0;
    (try Unix.close in_w with Unix.Unix_error _ -> ());
    { pid; fd = out_r }
  end

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

let attempt_body ~fault ~hb ?(obs = false) ?trace ~output run =
  match fault with
  | Some Fault.Hang ->
      (* Non-cooperative by construction: only the supervisor's
         SIGKILL (or the transport dying under it) ends this attempt. *)
      while true do
        Unix.sleepf 3600.
      done
  | Some Fault.Abort ->
      Sys.set_signal Sys.sigabrt Sys.Signal_default;
      Unix.kill (Unix.getpid ()) Sys.sigabrt
  | Some Fault.Garbage -> (
      try ignore (Unix.write_substring output "*** not an ipc frame ***" 0 24)
      with Unix.Unix_error _ -> ())
  | Some (Fault.Drop | Fault.Truncate | Fault.Slow) | None ->
      (* [obs] is the supervisor saying "I am profiling — snapshot even
         without heartbeats"; a plain [dmc sweep --trace] over a
         command fleet sets it so remote spans and counters come home. *)
      if hb || obs then Dmc_obs.Registry.set_enabled true;
      (if hb then begin
         (* Heartbeats ride the result channel as extra frames ahead of
            the result: span closes in the engines become rate-limited
            phase ticks.  Spans only record when the registry is on, so
            heartbeating implies an enabled registry; the supervisor
            ignores the resulting snapshot unless it is profiling. *)
         let ctx =
           match trace with
           | None -> []
           | Some tr ->
               [ ("host", Json.String tr.host); ("lease", Json.String tr.lease) ]
         in
         let last_hb = ref neg_infinity in
         let send phase =
           let t = Unix.gettimeofday () in
           if t -. !last_hb >= 0.15 then begin
             last_hb := t;
             try
               Ipc.write_frame output
                 (Json.Obj
                    [ ("hb", Json.Obj (("phase", Json.String phase) :: ctx)) ])
             with Unix.Unix_error _ -> ()
           end
         in
         send "start";
         Dmc_obs.Registry.on_span_close := Some send
       end);
      let result =
        try run () with
        | Budget.Exhausted f -> Error f
        | Budget.Internal_error { where; details } ->
            Error (Budget.Internal (where ^ ": " ^ details))
        | Stack_overflow ->
            Error (Budget.Too_large "worker recursion exceeded the OCaml stack")
        | e -> Error (Budget.Internal ("worker raised: " ^ Printexc.to_string e))
      in
      let frame =
        match result with
        | Ok v -> Json.Obj [ ("ok", v) ]
        | Error f -> Json.Obj [ ("err", Json.String (Budget.failure_to_string f)) ]
      in
      let frame =
        (* The span/counter snapshot rides in the same result frame; the
           supervisor merges it under this job's tid.  Engine failures
           keep their snapshot too — failed rungs must still appear in
           the trace.  The trace context is echoed back so the frame is
           self-describing to anything recording the wire. *)
        match frame with
        | Json.Obj fields when Dmc_obs.Registry.is_enabled () ->
            let ctx =
              match trace with
              | None -> []
              | Some tr -> [ ("trace", trace_json tr) ]
            in
            Json.Obj
              (fields @ (("obs", Dmc_obs.Registry.snapshot_json ()) :: ctx))
        | other -> other
      in
      (try Ipc.write_frame output frame with Unix.Unix_error _ -> ())

let run_call ~input ~output ~dispatch () =
  Lazy.force ignore_sigpipe;
  let refuse msg =
    (try
       Ipc.write_frame output
         (Json.Obj
            [
              ( "err",
                Json.String
                  (Budget.failure_to_string (Budget.Invalid_input msg)) );
            ])
     with Unix.Unix_error _ -> ());
    1
  in
  match Ipc.read_frame input with
  | Error e -> refuse ("bad worker call: " ^ Ipc.read_error_to_string e)
  | Ok json -> (
      match parse_envelope json with
      | Error msg -> refuse msg
      | Ok { job; hb; obs; trace; fault } ->
          attempt_body ~fault ~hb ~obs ?trace ~output (fun () -> dispatch job);
          0)
