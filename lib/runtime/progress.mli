(** Live progress for supervised pool runs.

    The pool supervisor builds a {!t} from its own scheduling state
    plus the per-attempt phase heartbeats workers send over the result
    pipe, and hands it to [config.on_progress] at a bounded rate.
    {!draw} renders it as a single self-overwriting stderr line —
    stdout is never touched, so enabling progress cannot perturb the
    byte-deterministic output/checkpoint contract. *)

type running = {
  job : int;  (** 0-based job index *)
  attempt : int;  (** 1-based attempt number *)
  phase : string;
      (** last heartbeat phase (innermost span name), [""] before the
          first heartbeat arrives *)
  host : string;
      (** name of the host holding this attempt's lease; ["local"] for
          the fork backend (and elided from the rendered line) *)
}

type t = {
  total : int;
  finished : int;
  running : running list;
  waiting : int;  (** queued plus sleeping out a retry backoff *)
  retries : int;  (** retry dispatches so far, across all jobs *)
  elapsed : float;  (** seconds since the pool run started *)
  eta : float option;
      (** [elapsed * remaining / finished]; [None] until the first
          job finishes *)
  rss_bytes : int option;
      (** resident set of the supervisor plus in-flight workers;
          [None] off-Linux or when /proc is unreadable *)
}

val rss_of_pid : int -> int option
(** Resident set size in bytes via [/proc/<pid>/statm]; [None] on any
    failure. *)

val rss_of_pids : int list -> int option
(** Sum over the readable pids; [None] when none are readable. *)

val render : t -> string
(** The one-line textual form (no trailing newline). *)

val draw : t -> unit
(** Write [render t] to stderr as a self-overwriting line
    ([\r] ... [ESC[K], flushed). *)

val clear : unit -> unit
(** Erase the progress line — call once after the run so the next
    stderr write starts on a clean line. *)
