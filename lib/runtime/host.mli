(** Per-host lease and health tracking for the multi-transport pool.

    Every attempt the pool dispatches is a {e lease}: a job handed to
    one host until its result frame arrives (the acknowledgement) or
    the host proves unfit to hold it.  This module is the health side
    of that ledger — a closed verdict taxonomy per host, driven by the
    attempt verdicts the supervisor classifies:

    - {!Alive}: delivering well-formed results;
    - {!Slow}: repeatedly hitting the hard attempt deadline — still
      used, but only when no alive host has a free slot;
    - {!Dead}: repeated transport failures (spawn failure, crash,
      vanished mid-frame) — quarantined with capped exponential
      backoff, then probed with a single attempt (half-open);
    - {!Poisoned}: repeatedly returning garbage instead of protocol
      frames — quarantined for the rest of the run; a host that lies
      is worse than a host that dies.

    The local fork host never leaves {!Alive}: its failures are the
    job's, not the machine's, so a run degrades gracefully down to
    local-fork-only and never wedges while one backend lives.

    Per-host [sweep.host.<name>.*] counters (dispatch / ok / fail /
    reshard) and an inflight gauge stream through the obs registry, so
    [--progress] and [dmc query --stats]-style snapshots can show the
    fleet's shape live. *)

type verdict = Alive | Slow | Dead | Poisoned

type policy = {
  fail_threshold : int;
      (** consecutive transport failures before the host is {!Dead} *)
  poison_threshold : int;
      (** garbage results before the host is {!Poisoned} *)
  slow_threshold : int;
      (** consecutive deadline kills before the host is {!Slow} *)
  quarantine_base : float;  (** first quarantine length, seconds *)
  quarantine_cap : float;  (** upper bound on any quarantine length *)
}

val default_policy : policy
(** 3 failures / 2 garbage / 2 timeouts; quarantine 1 s doubling,
    capped at 30 s. *)

type t = {
  name : string;
  transport : Transport.t;
  capacity : int;  (** concurrent leases this host may hold *)
  policy : policy;
  mutable verdict : verdict;
  mutable inflight : int;
  mutable consec_failures : int;
  mutable consec_timeouts : int;
  mutable garbage : int;
  mutable until : float;
      (** quarantine expiry ([infinity] = for the rest of the run) *)
  mutable quarantines : int;  (** times quarantined — drives the backoff *)
  mutable probing : bool;  (** half-open: one probe attempt in flight *)
  mutable last_seen : float;
      (** last heartbeat/byte from any of its attempts (lease clock) *)
  mutable dispatched : int;
  mutable completed : int;
  mutable failures_total : int;
  mutable resharded : int;
  mutable quarantine_log : (float * float) list;
      (** [(entered, until)] per quarantine, newest first ([until] is
          [infinity] for a poisoning) — the raw intervals behind the
          sweep report's host-health timeline *)
}

val local : ?name:string -> capacity:int -> unit -> t
(** The fork backend as a host.  Raises [Invalid_argument] when
    [capacity < 1]. *)

val remote :
  ?policy:policy -> name:string -> capacity:int -> argv:string list -> unit -> t
(** A remote-exec backend: [argv] spawned per attempt (e.g.
    [["ssh"; "user@h"; "dmc"; "worker"]]).  Raises [Invalid_argument]
    on an empty [argv] or [capacity < 1]. *)

val is_remote : t -> bool

val verdict_to_string : verdict -> string
(** ["alive"], ["slow"], ["dead"], ["poisoned"]. *)

val available : t -> now:float -> bool
(** Can this host accept one more lease right now?  [Poisoned] never;
    [Dead] only past its quarantine and then with a single probe slot;
    otherwise [inflight < capacity]. *)

val quarantined : t -> now:float -> bool

val next_wakeup : t -> float option
(** The quarantine expiry worth sleeping toward, when finite and in
    the future-or-present of no consequence to the caller's clock. *)

val lease : t -> now:float -> unit
(** Account one dispatched attempt (bumps inflight/dispatch counters;
    entering a quarantine-expired [Dead] host flips it to probing). *)

val release : t -> unit
(** The lease's attempt has been reaped (result or not). *)

val touch : t -> now:float -> unit
(** Bytes arrived from one of this host's attempts — the heartbeat
    that keeps the lease ledger's [last_seen] fresh. *)

type event =
  | Ok_result  (** a well-formed result frame ([ok] or typed [err]) *)
  | Transport_failure of string  (** crashed / vanished / spawn failed *)
  | Garbage of string  (** exited leaving non-protocol bytes *)
  | Deadline_kill  (** the supervisor SIGKILLed it at the deadline *)

val record : t -> now:float -> event -> [ `Fine | `Quarantined ]
(** Fold one classified attempt into the host's health.
    [`Quarantined] is returned only on the transition into
    quarantine — the caller then re-shards the host's remaining
    leases.  Local hosts only count; they never quarantine. *)

val note_reshard : t -> unit
(** A lease was taken back from this host and re-queued. *)

val parse_spec : string -> (t, string) result
(** One [--host] spec:
    - [local[:CAP]] — the fork backend, default capacity 1;
    - [cmd[:CAP]:COMMAND ...] — an arbitrary command (split on
      spaces; later [:] belong to the command);
    - [ssh[:CAP]:DEST] — shorthand for
      [cmd:CAP:ssh -oBatchMode=yes DEST dmc worker]. *)

val normalize : jobs:int -> t list -> t list
(** The host set a run actually uses: the parsed specs, with a local
    fork host of capacity [jobs] prepended when no spec supplied one —
    the guarantee that a fleet can always degrade to local-fork-only.
    Duplicate names get [#2], [#3]... suffixes so per-host counters
    stay distinguishable. *)
