module Counter = Dmc_obs.Counter
module Gauge = Dmc_obs.Gauge

type verdict = Alive | Slow | Dead | Poisoned

type policy = {
  fail_threshold : int;
  poison_threshold : int;
  slow_threshold : int;
  quarantine_base : float;
  quarantine_cap : float;
}

let default_policy =
  {
    fail_threshold = 3;
    poison_threshold = 2;
    slow_threshold = 2;
    quarantine_base = 1.;
    quarantine_cap = 30.;
  }

type t = {
  name : string;
  transport : Transport.t;
  capacity : int;
  policy : policy;
  mutable verdict : verdict;
  mutable inflight : int;
  mutable consec_failures : int;
  mutable consec_timeouts : int;
  mutable garbage : int;
  mutable until : float;
  mutable quarantines : int;
  mutable probing : bool;
  mutable last_seen : float;
  mutable dispatched : int;
  mutable completed : int;
  mutable failures_total : int;
  mutable resharded : int;
  mutable quarantine_log : (float * float) list;
      (* (entered, until) per quarantine, newest first — the health
         timeline's raw intervals *)
}

(* Counter.make is idempotent (find-or-create by name), so per-event
   lookups are cheap; the gauge mirrors [inflight] for live progress. *)
let c_dispatch h = Counter.make (Printf.sprintf "sweep.host.%s.dispatch" h.name)
let c_ok h = Counter.make (Printf.sprintf "sweep.host.%s.ok" h.name)
let c_fail h = Counter.make (Printf.sprintf "sweep.host.%s.fail" h.name)
let c_reshard h = Counter.make (Printf.sprintf "sweep.host.%s.reshard" h.name)
let g_inflight h = Gauge.make (Printf.sprintf "sweep.host.%s.inflight" h.name)

let make ~name ~transport ~capacity ~policy =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Host: capacity %d < 1 for %s" capacity name);
  {
    name;
    transport;
    capacity;
    policy;
    verdict = Alive;
    inflight = 0;
    consec_failures = 0;
    consec_timeouts = 0;
    garbage = 0;
    until = neg_infinity;
    quarantines = 0;
    probing = false;
    last_seen = neg_infinity;
    dispatched = 0;
    completed = 0;
    failures_total = 0;
    resharded = 0;
    quarantine_log = [];
  }

let local ?(name = "local") ~capacity () =
  make ~name ~transport:Transport.Fork ~capacity ~policy:default_policy

let remote ?(policy = default_policy) ~name ~capacity ~argv () =
  if argv = [] then invalid_arg ("Host: empty command for " ^ name);
  make ~name
    ~transport:(Transport.Command { argv = Array.of_list argv })
    ~capacity ~policy

let is_remote h = Transport.is_remote h.transport

let verdict_to_string = function
  | Alive -> "alive"
  | Slow -> "slow"
  | Dead -> "dead"
  | Poisoned -> "poisoned"

let quarantined h ~now =
  match h.verdict with
  | Poisoned -> true
  | Dead -> now < h.until
  | Alive | Slow -> false

let available h ~now =
  match h.verdict with
  | Poisoned -> false
  | Dead ->
      (* half-open: past the quarantine, admit exactly one probe *)
      now >= h.until && h.inflight = 0
  | Alive | Slow -> h.inflight < h.capacity

let next_wakeup h =
  match h.verdict with
  | Dead when h.until < infinity -> Some h.until
  | _ -> None

let lease h ~now =
  if h.verdict = Dead && now >= h.until then h.probing <- true;
  h.inflight <- h.inflight + 1;
  h.dispatched <- h.dispatched + 1;
  Counter.incr (c_dispatch h);
  Gauge.set (g_inflight h) (float_of_int h.inflight)

let release h =
  h.inflight <- max 0 (h.inflight - 1);
  Gauge.set (g_inflight h) (float_of_int h.inflight)

let touch h ~now = h.last_seen <- max h.last_seen now

type event =
  | Ok_result
  | Transport_failure of string
  | Garbage of string
  | Deadline_kill

let quarantine_for h =
  let p = h.policy in
  let d = p.quarantine_base *. (2. ** float_of_int h.quarantines) in
  Float.min d p.quarantine_cap

let enter_quarantine h ~now ~until_ =
  let was = quarantined h ~now in
  h.verdict <- Dead;
  h.until <- until_;
  h.quarantines <- h.quarantines + 1;
  h.quarantine_log <- (now, until_) :: h.quarantine_log;
  h.probing <- false;
  if was then `Fine else `Quarantined

let record h ~now event =
  match event with
  | Ok_result ->
      h.consec_failures <- 0;
      h.consec_timeouts <- 0;
      h.probing <- false;
      h.completed <- h.completed + 1;
      h.last_seen <- max h.last_seen now;
      Counter.incr (c_ok h);
      (* a successful probe (or any success) redeems a Dead/Slow host *)
      if h.verdict <> Poisoned then h.verdict <- Alive;
      `Fine
  | Deadline_kill ->
      h.consec_timeouts <- h.consec_timeouts + 1;
      h.failures_total <- h.failures_total + 1;
      Counter.incr (c_fail h);
      if is_remote h && h.consec_timeouts >= h.policy.slow_threshold then begin
        (* a probe that times out re-quarantines; a merely slow alive
           host is only deprioritised, never benched *)
        if h.probing then
          enter_quarantine h ~now ~until_:(now +. quarantine_for h)
        else begin
          if h.verdict <> Poisoned then h.verdict <- Slow;
          `Fine
        end
      end
      else `Fine
  | Transport_failure _ ->
      h.consec_failures <- h.consec_failures + 1;
      h.failures_total <- h.failures_total + 1;
      Counter.incr (c_fail h);
      if
        is_remote h
        && (h.probing || h.consec_failures >= h.policy.fail_threshold)
        && h.verdict <> Poisoned
      then begin
        h.consec_failures <- 0;
        enter_quarantine h ~now ~until_:(now +. quarantine_for h)
      end
      else `Fine
  | Garbage _ ->
      h.garbage <- h.garbage + 1;
      h.failures_total <- h.failures_total + 1;
      Counter.incr (c_fail h);
      if is_remote h && h.garbage >= h.policy.poison_threshold then begin
        let r = enter_quarantine h ~now ~until_:infinity in
        h.verdict <- Poisoned;
        r
      end
      else `Fine

let note_reshard h =
  h.resharded <- h.resharded + 1;
  Counter.incr (c_reshard h)

(* --------------------------------------------------------------- *)
(* --host spec parsing                                              *)

let split_spec s =
  (* "kind[:CAP]:rest" — CAP optional, rest may itself contain ':' *)
  match String.index_opt s ':' with
  | None -> (s, None, None)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest ':' with
      | None -> (
          match int_of_string_opt rest with
          | Some cap -> (kind, Some cap, None)
          | None -> (kind, None, Some rest))
      | Some j -> (
          let head = String.sub rest 0 j in
          let tail = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt head with
          | Some cap -> (kind, Some cap, Some tail)
          | None -> (kind, None, Some rest)))

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_spec s =
  let s = String.trim s in
  let kind, cap, rest = split_spec s in
  let cap = Option.value cap ~default:1 in
  if cap < 1 then Error (Printf.sprintf "host %S: capacity must be >= 1" s)
  else
    match (kind, rest) with
    | "local", None -> Ok (local ~capacity:cap ())
    | "local", Some _ -> Error (Printf.sprintf "host %S: local takes no command" s)
    | "cmd", Some command -> (
        match words command with
        | [] -> Error (Printf.sprintf "host %S: empty command" s)
        | argv ->
            let name = Filename.basename (List.hd argv) in
            Ok (remote ~name ~capacity:cap ~argv ()))
    | "cmd", None -> Error (Printf.sprintf "host %S: cmd needs a command" s)
    | "ssh", Some dest when words dest <> [] ->
        let dest = String.trim dest in
        Ok
          (remote ~name:dest ~capacity:cap
             ~argv:[ "ssh"; "-oBatchMode=yes"; dest; "dmc"; "worker" ]
             ())
    | "ssh", _ -> Error (Printf.sprintf "host %S: ssh needs a destination" s)
    | _ ->
        Error
          (Printf.sprintf
             "host %S: unknown kind %S (expected local | cmd | ssh)" s kind)

let normalize ~jobs hosts =
  let hosts =
    if List.exists (fun h -> not (is_remote h)) hosts then hosts
    else local ~capacity:(max 1 jobs) () :: hosts
  in
  (* De-duplicate names so sweep.host.* metrics stay per-host. *)
  let seen = Hashtbl.create 8 in
  List.map
    (fun h ->
      let n = try Hashtbl.find seen h.name with Not_found -> 0 in
      Hashtbl.replace seen h.name (n + 1);
      if n = 0 then h
      else { h with name = Printf.sprintf "%s#%d" h.name (n + 1) })
    hosts
