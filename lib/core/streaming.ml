module Implicit = Dmc_cdag.Implicit
module Subgraph = Dmc_cdag.Subgraph
module Json = Dmc_util.Json
module Pool = Dmc_runtime.Pool

type window_bound = { lo : int; hi : int; bound : int }

type result = {
  total : int;
  n_windows : int;
  degraded : int;
  windows : window_bound array;
}

let default_window = 4096

let c_windows = Dmc_obs.Counter.make "core.streaming.windows"

let window_bound ?samples imp ~s ~lo ~hi =
  Dmc_obs.Counter.incr c_windows;
  let part = Implicit.window imp ~lo ~hi in
  Wavefront.lower_bound ?samples part.Subgraph.graph ~s

let layout imp ~window =
  if window <= 0 then invalid_arg "Streaming.wavefront_sum: window <= 0";
  let n = imp.Implicit.n_vertices in
  let n_windows = (n + window - 1) / window in
  (n, n_windows)

let wavefront_sum ?samples ?(window = default_window) imp ~s =
  let n, n_windows = layout imp ~window in
  let windows =
    Array.init n_windows (fun w ->
        let lo = w * window and hi = min n ((w + 1) * window) in
        { lo; hi; bound = window_bound ?samples imp ~s ~lo ~hi })
  in
  {
    total = Array.fold_left (fun acc w -> acc + w.bound) 0 windows;
    n_windows;
    degraded = 0;
    windows;
  }

(* Fan the windows out over the supervised pool.  The implicit graph
   crosses into each worker by fork (closures need no serialization),
   and results are committed in window order, so the output — totals
   and the per-window rows — is identical for every [jobs] width.  A
   window whose worker dies (crash, timeout after retries) degrades to
   the trivial bound 0, which keeps the Theorem-2 sum sound. *)
let wavefront_sum_pooled ?samples ?(window = default_window) ?timeout
    ?(retries = 2) ~jobs imp ~s =
  if jobs <= 1 then wavefront_sum ?samples ~window imp ~s
  else begin
    let n, n_windows = layout imp ~window in
    let cfg = { Pool.default with jobs; timeout; max_retries = retries } in
    let worker _ w =
      let lo = w * window and hi = min n ((w + 1) * window) in
      Ok (Json.Int (window_bound ?samples imp ~s ~lo ~hi))
    in
    let outcomes = Pool.run cfg ~worker (List.init n_windows (fun w -> w)) in
    let degraded = ref 0 in
    let windows =
      Array.init n_windows (fun w ->
          let lo = w * window and hi = min n ((w + 1) * window) in
          let bound =
            match outcomes.(w).Pool.verdict with
            | Pool.Done (Json.Int b) -> b
            | _ ->
                incr degraded;
                0
          in
          { lo; hi; bound })
    in
    {
      total = Array.fold_left (fun acc w -> acc + w.bound) 0 windows;
      n_windows;
      degraded = !degraded;
      windows;
    }
  end
