module Hierarchy = Dmc_machine.Hierarchy

let fi = float_of_int

let check_level hierarchy level =
  if level < 2 || level > Hierarchy.n_levels hierarchy then
    invalid_arg "Parallel_bounds: level must be in [2, L]"

let vertical_from_sequential ~hierarchy ~level ~seq_lb =
  check_level hierarchy level;
  let s_below =
    Hierarchy.capacity hierarchy ~level:(level - 1)
    * Hierarchy.count hierarchy ~level:(level - 1)
  in
  seq_lb ~s:s_below /. fi (Hierarchy.count hierarchy ~level)

let vertical_from_u ~hierarchy ~level ~work ~u =
  check_level hierarchy level;
  if u <= 0.0 then invalid_arg "Parallel_bounds.vertical_from_u: u";
  if work < 0.0 then invalid_arg "Parallel_bounds.vertical_from_u: work";
  let nl = fi (Hierarchy.count hierarchy ~level) in
  let nl_below = fi (Hierarchy.count hierarchy ~level:(level - 1)) in
  let s_below = fi (Hierarchy.capacity hierarchy ~level:(level - 1)) in
  Float.max 0.0 (((work /. (u *. nl)) -. (nl_below /. nl)) *. s_below)

let horizontal_from_u ~hierarchy ~work ~u =
  if u <= 0.0 then invalid_arg "Parallel_bounds.horizontal_from_u: u";
  if work < 0.0 then invalid_arg "Parallel_bounds.horizontal_from_u: work";
  let levels = Hierarchy.n_levels hierarchy in
  let n_top = Hierarchy.count hierarchy ~level:levels in
  let group = fi (Hierarchy.processors hierarchy) /. fi n_top in
  let s_top = fi (Hierarchy.capacity hierarchy ~level:levels) in
  Float.max 0.0 (((work /. (u *. group)) -. 1.0) *. s_top)

let per_processor_work ~hierarchy ~work =
  work /. fi (Hierarchy.processors hierarchy)

(* ------------------------------------------------------------------ *)
(* Multi-processor (MPP) game bounds, arXiv 2409.03898.               *)

let mp_comm_from_sequential ~p ~seq_lb ~s =
  if p <= 0 then invalid_arg "Parallel_bounds.mp_comm_from_sequential: p";
  if s <= 0 then invalid_arg "Parallel_bounds.mp_comm_from_sequential: s";
  seq_lb ~s:(p * s)

let ceil_div a b = (a + b - 1) / b

let mp_time_lower ~p ~g_cost ~work ~span ~comm_lb =
  if p <= 0 then invalid_arg "Parallel_bounds.mp_time_lower: p";
  if g_cost < 0 || work < 0 || span < 0 || comm_lb < 0 then
    invalid_arg "Parallel_bounds.mp_time_lower: negative argument";
  max span (ceil_div (work + (g_cost * comm_lb)) p)
