module Bitset = Dmc_util.Bitset
module Budget = Dmc_util.Budget
module Cdag = Dmc_cdag.Cdag
module Topo = Dmc_cdag.Topo
module Hierarchy = Dmc_machine.Hierarchy

type policy = Lru | Belady

let c_belady_evict = Dmc_obs.Counter.make "strategy.evictions.belady"
let c_lru_evict = Dmc_obs.Counter.make "strategy.evictions.lru"
let h_evict_distance = Dmc_obs.Histogram.make "strategy.evict_distance"

let default_order g =
  Topo.order g |> Array.to_list
  |> List.filter (fun v -> not (Cdag.is_input g v))
  |> Array.of_list

let dfs_order g =
  let n = Cdag.n_vertices g in
  let visited = Bitset.create n in
  let order = Dmc_util.Intvec.create ~initial_capacity:n () in
  let rec visit v =
    if not (Bitset.mem visited v) then begin
      Bitset.add visited v;
      Cdag.iter_pred g v visit;
      if not (Cdag.is_input g v) then Dmc_util.Intvec.push order v
    end
  in
  List.iter visit (Cdag.outputs g);
  Cdag.iter_vertices g (fun v -> if not (Cdag.is_input g v) then visit v);
  Dmc_util.Intvec.to_array order

let check_order g order =
  let n = Cdag.n_vertices g in
  let pos = Array.make n (-1) in
  if Array.length order <> Cdag.n_compute g then
    invalid_arg "Strategy: order must cover exactly the non-input vertices";
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || Cdag.is_input g v then
        invalid_arg "Strategy: order contains an input or bad vertex";
      if pos.(v) >= 0 then invalid_arg "Strategy: duplicate vertex in order";
      pos.(v) <- i)
    order;
  Cdag.iter_edges g (fun u v ->
      if pos.(u) >= 0 && pos.(v) >= 0 && pos.(u) >= pos.(v) then
        invalid_arg "Strategy: order is not topological");
  pos

(* Positions (ascending) at which each vertex is consumed as an
   operand. *)
let use_positions g order =
  let n = Cdag.n_vertices g in
  let uses = Array.make n [] in
  Array.iteri
    (fun i v -> Cdag.iter_pred g v (fun p -> uses.(p) <- i :: uses.(p)))
    order;
  Array.map (fun l -> Array.of_list (List.rev l)) uses

let no_use = max_int

let schedule ?budget ?(policy = Belady) ?order g ~s =
  if s <= 0 then invalid_arg "Strategy.schedule: s must be positive";
  Dmc_obs.Span.with_
    ~attrs:
      [
        ("policy", (match policy with Belady -> "belady" | Lru -> "lru"));
        ("s", string_of_int s);
      ]
    "strategy.schedule"
  @@ fun () ->
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let uses = use_positions g order in
  let cursor = Array.make n 0 in
  let next_use v =
    let u = uses.(v) in
    if cursor.(v) < Array.length u then u.(cursor.(v)) else no_use
  in
  let red = Bitset.create n and blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let loaded = Bitset.create n in
  let pinned = Bitset.create n in
  let last_use = Array.make n 0 in
  let clock = ref 0 in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let store_if_needed v ~future =
    if (future || Cdag.is_output g v) && not (Bitset.mem blue v) then begin
      emit (Rb_game.Store v);
      Bitset.add blue v
    end
  in
  let evict_one () =
    let best = ref (-1) and best_score = ref min_int in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem pinned v) then begin
          let score =
            match policy with
            | Belady ->
                let nu = next_use v in
                (* Prefer furthest next use; among dead values prefer
                   those that do not need a store. *)
                if nu = no_use then
                  if Bitset.mem blue v || not (Cdag.is_output g v) then max_int
                  else max_int - 1
                else nu
            | Lru -> - last_use.(v)
          in
          if score > !best_score then begin
            best_score := score;
            best := v
          end
        end)
      red;
    if !best < 0 then failwith "Strategy.schedule: S too small for the operand set";
    let v = !best in
    Dmc_obs.Counter.incr
      (match policy with Belady -> c_belady_evict | Lru -> c_lru_evict);
    (* How far ahead the evicted value's next use lies — dead values
       (no next use) are not observed, so the distribution reflects
       only evictions that will force a reload. *)
    (let nu = next_use v in
     if nu <> no_use then
       Dmc_obs.Histogram.observe h_evict_distance (nu - !clock));
    store_if_needed v ~future:(next_use v <> no_use);
    emit (Rb_game.Delete v);
    Bitset.remove red v
  in
  let make_room () = while Bitset.cardinal red >= s do evict_one () done in
  let bring_in v =
    if not (Bitset.mem red v) then begin
      make_room ();
      if not (Bitset.mem blue v) then
        Budget.internal_error ~where:"Strategy.schedule"
          "operand %d lost (n=%d, s=%d, clock=%d)" v n s !clock;
      emit (Rb_game.Load v);
      Bitset.add red v;
      Bitset.add loaded v
    end;
    incr clock;
    last_use.(v) <- !clock
  in
  let release v =
    (* Drop a value as soon as its last consumer has fired. *)
    if Bitset.mem red v && next_use v = no_use then begin
      store_if_needed v ~future:false;
      emit (Rb_game.Delete v);
      Bitset.remove red v
    end
  in
  Array.iteri
    (fun i v ->
      (match budget with None -> () | Some b -> Budget.tick b);
      let preds = Cdag.pred_list g v in
      (* Pin operands already resident, then fault the rest in. *)
      List.iter (fun p -> if Bitset.mem red p then Bitset.add pinned p) preds;
      List.iter
        (fun p ->
          bring_in p;
          Bitset.add pinned p)
        preds;
      make_room ();
      emit (Rb_game.Compute v);
      Bitset.add red v;
      incr clock;
      last_use.(v) <- !clock;
      List.iter (fun p -> Bitset.remove pinned p) preds;
      (* Advance the use cursors past position [i]. *)
      List.iter
        (fun p ->
          let u = uses.(p) in
          while cursor.(p) < Array.length u && u.(cursor.(p)) <= i do
            cursor.(p) <- cursor.(p) + 1
          done)
        preds;
      List.iter release preds;
      release v)
    order;
  (* Outputs still resident must reach slow memory; untouched inputs
     must still be whitened by one load each. *)
  List.iter
    (fun v -> if Bitset.mem red v && not (Bitset.mem blue v) then begin
         emit (Rb_game.Store v);
         Bitset.add blue v
       end)
    (Cdag.outputs g);
  List.iter
    (fun v ->
      if not (Bitset.mem loaded v) && not (Bitset.mem red v) then begin
        make_room ();
        emit (Rb_game.Load v);
        Bitset.add red v;
        emit (Rb_game.Delete v);
        Bitset.remove red v
      end)
    (Cdag.inputs g);
  List.rev !moves

let io ?budget ?policy ?order g ~s =
  List.fold_left
    (fun acc m ->
      match (m : Rb_game.move) with
      | Rb_game.Load _ | Rb_game.Store _ -> acc + 1
      | Rb_game.Compute _ | Rb_game.Delete _ -> acc)
    0
    (schedule ?budget ?policy ?order g ~s)

let trivial g =
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let used_input = Bitset.create (Cdag.n_vertices g) in
  Array.iter
    (fun v ->
      if not (Cdag.is_input g v) then begin
        let preds = Cdag.pred_list g v in
        List.iter
          (fun p ->
            emit (Rb_game.Load p);
            if Cdag.is_input g p then Bitset.add used_input p)
          preds;
        emit (Rb_game.Compute v);
        emit (Rb_game.Store v);
        List.iter (fun p -> emit (Rb_game.Delete p)) preds;
        emit (Rb_game.Delete v)
      end)
    (Topo.order g);
  List.iter
    (fun v ->
      if not (Bitset.mem used_input v) then begin
        emit (Rb_game.Load v);
        emit (Rb_game.Delete v)
      end)
    (Cdag.inputs g);
  List.rev !moves

let trivial_io g =
  let unused_inputs =
    List.length (List.filter (fun v -> Cdag.out_degree g v = 0) (Cdag.inputs g))
  in
  Cdag.fold_vertices g
    (fun acc v -> if Cdag.is_input g v then acc else acc + Cdag.in_degree g v + 1)
    unused_inputs

let hierarchical_hierarchy ~s1 ~s2 =
  Hierarchy.create
    [
      { Hierarchy.count = 1; capacity = s1 };
      { Hierarchy.count = 1; capacity = s2 };
      { Hierarchy.count = 1; capacity = max_int / 2 };
    ]

let hierarchical ?(policy = Belady) ?order g ~s1 ~s2 =
  if s1 <= 0 || s2 <= 0 then invalid_arg "Strategy.hierarchical";
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let uses = use_positions g order in
  let cursor = Array.make n 0 in
  let next_use v =
    let u = uses.(v) in
    if cursor.(v) < Array.length u then u.(cursor.(v)) else no_use
  in
  let regs = Bitset.create n and cache = Bitset.create n in
  let in_memory = Bitset.create n in   (* present at level 3 *)
  let input_read = Bitset.create n in
  let pinned = Bitset.create n in
  let last_use = Array.make n 0 in
  let clock = ref 0 in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let score v =
    match policy with
    | Belady -> if next_use v = no_use then max_int else next_use v
    | Lru -> -last_use.(v)
  in
  let pick_victim set =
    let best = ref (-1) and best_score = ref min_int in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem pinned v) then begin
          let sc = score v in
          if sc > !best_score then begin
            best_score := sc;
            best := v
          end
        end)
      set;
    if !best < 0 then failwith "Strategy.hierarchical: capacities too small";
    !best
  in
  (* Evict one cache entry; live values retreat to memory. *)
  let evict_cache () =
    let v = pick_victim cache in
    if (next_use v <> no_use || Cdag.is_output g v) && not (Bitset.mem in_memory v)
    then begin
      emit (Prbw_game.Move_down { level = 3; unit_id = 0; v });
      Bitset.add in_memory v
    end;
    emit (Prbw_game.Delete { level = 2; unit_id = 0; v });
    Bitset.remove cache v
  in
  let cache_room () = while Bitset.cardinal cache >= s2 do evict_cache () done in
  (* Evict one register; live values retreat to the cache. *)
  let evict_regs () =
    let v = pick_victim regs in
    if (next_use v <> no_use || Cdag.is_output g v) && not (Bitset.mem cache v)
       && not (Bitset.mem in_memory v)
    then begin
      cache_room ();
      emit (Prbw_game.Move_down { level = 2; unit_id = 0; v });
      Bitset.add cache v
    end;
    emit (Prbw_game.Delete { level = 1; unit_id = 0; v });
    Bitset.remove regs v
  in
  let regs_room () = while Bitset.cardinal regs >= s1 do evict_regs () done in
  let touch v =
    incr clock;
    last_use.(v) <- !clock
  in
  (* Bring an operand into the registers, staging through the cache. *)
  let bring_in v =
    if not (Bitset.mem regs v) then begin
      if not (Bitset.mem cache v) then begin
        if Cdag.is_input g v && not (Bitset.mem input_read v) then begin
          emit (Prbw_game.Input { unit_id = 0; v });
          Bitset.add in_memory v;
          Bitset.add input_read v
        end;
        if not (Bitset.mem in_memory v) then
          Budget.internal_error ~where:"Strategy.hierarchical"
            "operand %d lost (n=%d, s1=%d, s2=%d, clock=%d)" v n s1 s2 !clock;
        cache_room ();
        emit (Prbw_game.Move_up { level = 2; unit_id = 0; v });
        Bitset.add cache v
      end;
      Bitset.add pinned v;
      regs_room ();
      emit (Prbw_game.Move_up { level = 1; unit_id = 0; v });
      Bitset.add regs v
    end;
    Bitset.add pinned v;
    touch v
  in
  let release ~level set v =
    if Bitset.mem set v && next_use v = no_use && not (Cdag.is_output g v) then begin
      emit (Prbw_game.Delete { level; unit_id = 0; v });
      Bitset.remove set v
    end
  in
  Array.iteri
    (fun i v ->
      let preds = Cdag.pred_list g v in
      List.iter (fun p -> if Bitset.mem regs p then Bitset.add pinned p) preds;
      List.iter bring_in preds;
      regs_room ();
      emit (Prbw_game.Compute { proc = 0; v });
      Bitset.add regs v;
      touch v;
      List.iter (fun p -> Bitset.remove pinned p) preds;
      List.iter
        (fun p ->
          let u = uses.(p) in
          while cursor.(p) < Array.length u && u.(cursor.(p)) <= i do
            cursor.(p) <- cursor.(p) + 1
          done)
        preds;
      List.iter (release ~level:1 regs) preds;
      List.iter (release ~level:2 cache) preds;
      release ~level:1 regs v)
    order;
  (* Outputs must reach the memory level and receive blue pebbles;
     tagged inputs are born blue and need neither. *)
  List.iter
    (fun v ->
      if not (Cdag.is_input g v) then begin
        if not (Bitset.mem in_memory v) then begin
          if not (Bitset.mem cache v) then begin
            if not (Bitset.mem regs v) then
              Budget.internal_error ~where:"Strategy.hierarchical"
                "output %d lost (n=%d, s1=%d, s2=%d)" v n s1 s2;
            cache_room ();
            emit (Prbw_game.Move_down { level = 2; unit_id = 0; v });
            Bitset.add cache v
          end;
          emit (Prbw_game.Move_down { level = 3; unit_id = 0; v });
          Bitset.add in_memory v
        end;
        emit (Prbw_game.Output { unit_id = 0; v })
      end)
    (Cdag.outputs g);
  (* Whiten untouched inputs. *)
  List.iter
    (fun v ->
      if not (Bitset.mem input_read v) then begin
        emit (Prbw_game.Input { unit_id = 0; v });
        Bitset.add input_read v
      end)
    (Cdag.inputs g);
  List.rev !moves

let smp_hierarchy ~cores ~s1 ~s2 =
  Hierarchy.create
    [
      { Hierarchy.count = cores; capacity = s1 };
      { Hierarchy.count = 1; capacity = s2 };
      { Hierarchy.count = 1; capacity = max_int / 2 };
    ]

let smp_shared ?(policy = Belady) ?order g ~cores ~s1 ~s2 =
  if cores <= 0 || s1 <= 0 || s2 <= 0 then invalid_arg "Strategy.smp_shared";
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let uses = use_positions g order in
  let cursor = Array.make n 0 in
  let next_use v =
    let u = uses.(v) in
    if cursor.(v) < Array.length u then u.(cursor.(v)) else no_use
  in
  let cache = Bitset.create n and in_memory = Bitset.create n in
  let input_read = Bitset.create n in
  let pinned = Bitset.create n in
  let last_use = Array.make n 0 in
  let clock = ref 0 in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let evict_cache () =
    let best = ref (-1) and best_score = ref min_int in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem pinned v) then begin
          let sc =
            match policy with
            | Belady -> if next_use v = no_use then max_int else next_use v
            | Lru -> -last_use.(v)
          in
          if sc > !best_score then begin
            best_score := sc;
            best := v
          end
        end)
      cache;
    if !best < 0 then failwith "Strategy.smp_shared: cache too small";
    let v = !best in
    if (next_use v <> no_use || Cdag.is_output g v) && not (Bitset.mem in_memory v)
    then begin
      emit (Prbw_game.Move_down { level = 3; unit_id = 0; v });
      Bitset.add in_memory v
    end;
    emit (Prbw_game.Delete { level = 2; unit_id = 0; v });
    Bitset.remove cache v
  in
  let cache_room () = while Bitset.cardinal cache >= s2 do evict_cache () done in
  let ensure_in_cache v =
    if not (Bitset.mem cache v) then begin
      if Cdag.is_input g v && not (Bitset.mem input_read v) then begin
        emit (Prbw_game.Input { unit_id = 0; v });
        Bitset.add in_memory v;
        Bitset.add input_read v
      end;
      if not (Bitset.mem in_memory v) then
        Budget.internal_error ~where:"Strategy.smp_shared"
          "operand %d lost (n=%d, s1=%d, s2=%d)" v n s1 s2;
      cache_room ();
      emit (Prbw_game.Move_up { level = 2; unit_id = 0; v });
      Bitset.add cache v
    end;
    Bitset.add pinned v;
    incr clock;
    last_use.(v) <- !clock
  in
  Array.iteri
    (fun i v ->
      let proc = i mod cores in
      let preds = Cdag.pred_list g v in
      if List.length preds >= s1 then
        failwith "Strategy.smp_shared: register file too small for the operand set";
      (* stage all operands into the shared cache first (pinned), then
         into this core's registers *)
      List.iter ensure_in_cache preds;
      List.iter
        (fun u -> emit (Prbw_game.Move_up { level = 1; unit_id = proc; v = u }))
        preds;
      emit (Prbw_game.Compute { proc; v });
      (* result goes to the shared cache; registers are cleared *)
      cache_room ();
      emit (Prbw_game.Move_down { level = 2; unit_id = 0; v });
      Bitset.add cache v;
      incr clock;
      last_use.(v) <- !clock;
      List.iter
        (fun u -> emit (Prbw_game.Delete { level = 1; unit_id = proc; v = u }))
        preds;
      emit (Prbw_game.Delete { level = 1; unit_id = proc; v });
      List.iter (fun u -> Bitset.remove pinned u) preds;
      List.iter
        (fun u ->
          let us = uses.(u) in
          while cursor.(u) < Array.length us && us.(cursor.(u)) <= i do
            cursor.(u) <- cursor.(u) + 1
          done)
        preds;
      (* eagerly drop dead non-outputs from the cache *)
      List.iter
        (fun u ->
          if Bitset.mem cache u && next_use u = no_use && not (Cdag.is_output g u)
          then begin
            emit (Prbw_game.Delete { level = 2; unit_id = 0; v = u });
            Bitset.remove cache u
          end)
        preds)
    order;
  (* outputs to memory + blue pebbles; whiten unread inputs *)
  List.iter
    (fun v ->
      if not (Cdag.is_input g v) then begin
        if not (Bitset.mem in_memory v) then begin
          if not (Bitset.mem cache v) then
            Budget.internal_error ~where:"Strategy.smp_shared"
              "output %d lost (n=%d, s1=%d, s2=%d)" v n s1 s2;
          emit (Prbw_game.Move_down { level = 3; unit_id = 0; v });
          Bitset.add in_memory v
        end;
        emit (Prbw_game.Output { unit_id = 0; v })
      end)
    (Cdag.outputs g);
  List.iter
    (fun v ->
      if not (Bitset.mem input_read v) then begin
        emit (Prbw_game.Input { unit_id = 0; v });
        Bitset.add input_read v
      end)
    (Cdag.inputs g);
  List.rev !moves

let c_mp_remote = Dmc_obs.Counter.make "strategy.mp.remote_stores"
let c_pc_absorbs = Dmc_obs.Counter.make "strategy.pc.absorbs"

(* A p-processor execution with private fast memories: vertices are
   assigned round-robin over the processors in [order]; a value
   produced on one processor and consumed on another travels through
   slow memory (store at the producer, load at the consumer), so every
   communication shows up in the emitted game's I/O count.  Per-
   processor eviction mirrors [schedule]: policy-driven victims, live
   victims stored before deletion, dead values dropped eagerly.  At
   [p = 1] this degenerates move-for-move to [schedule]. *)
let mp_schedule ?budget ?(policy = Belady) ?order g ~p ~s =
  if p <= 0 then invalid_arg "Strategy.mp_schedule: p must be positive";
  if s <= 0 then invalid_arg "Strategy.mp_schedule: s must be positive";
  Dmc_obs.Span.with_
    ~attrs:
      [
        ("policy", (match policy with Belady -> "belady" | Lru -> "lru"));
        ("p", string_of_int p);
        ("s", string_of_int s);
      ]
    "strategy.mp_schedule"
  @@ fun () ->
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let uses = use_positions g order in
  let cursor = Array.make n 0 in
  let next_use v =
    let u = uses.(v) in
    if cursor.(v) < Array.length u then u.(cursor.(v)) else no_use
  in
  let red = Array.init p (fun _ -> Bitset.create n) in
  let blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let loaded = Bitset.create n in
  (* Only the firing processor evicts during its turn, so one pinned
     set suffices across all processors. *)
  let pinned = Bitset.create n in
  let last_use = Array.make n 0 in
  let clock = ref 0 in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let store_if_needed q v ~future =
    if (future || Cdag.is_output g v) && not (Bitset.mem blue v) then begin
      emit (Mp_game.Store { proc = q; v });
      Bitset.add blue v
    end
  in
  let evict_one q =
    let best = ref (-1) and best_score = ref min_int in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem pinned v) then begin
          let score =
            match policy with
            | Belady ->
                let nu = next_use v in
                if nu = no_use then
                  if Bitset.mem blue v || not (Cdag.is_output g v) then max_int
                  else max_int - 1
                else nu
            | Lru -> -last_use.(v)
          in
          if score > !best_score then begin
            best_score := score;
            best := v
          end
        end)
      red.(q);
    if !best < 0 then
      failwith "Strategy.mp_schedule: S too small for the operand set";
    let v = !best in
    store_if_needed q v ~future:(next_use v <> no_use);
    emit (Mp_game.Delete { proc = q; v });
    Bitset.remove red.(q) v
  in
  let make_room q = while Bitset.cardinal red.(q) >= s do evict_one q done in
  (* Bring an operand into processor [q]'s fast memory.  A value that
     is neither blue nor resident on [q] still lives red on its
     producer: that processor publishes it (one store — the
     communication), then [q] loads it. *)
  let bring_in q v =
    if not (Bitset.mem red.(q) v) then begin
      if not (Bitset.mem blue v) then begin
        let holder = ref (-1) in
        for r = 0 to p - 1 do
          if !holder < 0 && Bitset.mem red.(r) v then holder := r
        done;
        if !holder < 0 then
          Budget.internal_error ~where:"Strategy.mp_schedule"
            "operand %d lost (n=%d, p=%d, s=%d, clock=%d)" v n p s !clock;
        Dmc_obs.Counter.incr c_mp_remote;
        emit (Mp_game.Store { proc = !holder; v });
        Bitset.add blue v
      end;
      make_room q;
      emit (Mp_game.Load { proc = q; v });
      Bitset.add red.(q) v;
      Bitset.add loaded v
    end;
    incr clock;
    last_use.(v) <- !clock
  in
  let release q v =
    if Bitset.mem red.(q) v && next_use v = no_use then begin
      store_if_needed q v ~future:false;
      emit (Mp_game.Delete { proc = q; v });
      Bitset.remove red.(q) v
    end
  in
  Array.iteri
    (fun i v ->
      (match budget with None -> () | Some b -> Budget.tick b);
      let q = i mod p in
      let preds = Cdag.pred_list g v in
      List.iter (fun u -> if Bitset.mem red.(q) u then Bitset.add pinned u) preds;
      List.iter
        (fun u ->
          bring_in q u;
          Bitset.add pinned u)
        preds;
      make_room q;
      emit (Mp_game.Compute { proc = q; v });
      Bitset.add red.(q) v;
      incr clock;
      last_use.(v) <- !clock;
      List.iter (fun u -> Bitset.remove pinned u) preds;
      List.iter
        (fun u ->
          let us = uses.(u) in
          while cursor.(u) < Array.length us && us.(cursor.(u)) <= i do
            cursor.(u) <- cursor.(u) + 1
          done)
        preds;
      List.iter (release q) preds;
      release q v)
    order;
  (* Outputs still resident somewhere must reach slow memory; untouched
     inputs must still be read once each (the white-pebble completion
     convention). *)
  List.iter
    (fun v ->
      if not (Bitset.mem blue v) then begin
        let holder = ref (-1) in
        for r = 0 to p - 1 do
          if !holder < 0 && Bitset.mem red.(r) v then holder := r
        done;
        if !holder < 0 then
          Budget.internal_error ~where:"Strategy.mp_schedule"
            "output %d lost (n=%d, p=%d, s=%d)" v n p s;
        emit (Mp_game.Store { proc = !holder; v });
        Bitset.add blue v
      end)
    (Cdag.outputs g);
  List.iter
    (fun v ->
      if not (Bitset.mem loaded v) then begin
        make_room 0;
        emit (Mp_game.Load { proc = 0; v });
        Bitset.add red.(0) v;
        emit (Mp_game.Delete { proc = 0; v });
        Bitset.remove red.(0) v
      end)
    (Cdag.inputs g);
  List.rev !moves

let mp_io ?budget ?policy ?order g ~p ~s =
  List.fold_left
    (fun acc m ->
      match (m : Mp_game.move) with
      | Mp_game.Load _ | Mp_game.Store _ -> acc + 1
      | Mp_game.Compute _ | Mp_game.Delete _ -> acc)
    0
    (mp_schedule ?budget ?policy ?order g ~p ~s)

let mp_trivial g ~p =
  if p <= 0 then invalid_arg "Strategy.mp_trivial: p must be positive";
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let used_input = Bitset.create (Cdag.n_vertices g) in
  let i = ref 0 in
  Array.iter
    (fun v ->
      if not (Cdag.is_input g v) then begin
        let q = !i mod p in
        incr i;
        let preds = Cdag.pred_list g v in
        List.iter
          (fun u ->
            emit (Mp_game.Load { proc = q; v = u });
            if Cdag.is_input g u then Bitset.add used_input u)
          preds;
        emit (Mp_game.Compute { proc = q; v });
        emit (Mp_game.Store { proc = q; v });
        List.iter (fun u -> emit (Mp_game.Delete { proc = q; v = u })) preds;
        emit (Mp_game.Delete { proc = q; v })
      end)
    (Topo.order g);
  List.iter
    (fun v ->
      if not (Bitset.mem used_input v) then begin
        emit (Mp_game.Load { proc = 0; v });
        emit (Mp_game.Delete { proc = 0; v })
      end)
    (Cdag.inputs g);
  List.rev !moves

let mp_trivial_io = trivial_io
(* every operand loaded just before use, every result stored once:
   the count is independent of the processor assignment. *)

(* The partial-computation schedule: each vertex is an accumulator
   that absorbs its operands one at a time, so only the accumulator
   and the operand in flight are ever pinned — two red pebbles
   suffice for any in-degree.  Operand residency is managed by the
   same policy-driven cache as [schedule]. *)
let pc_schedule ?budget ?(policy = Belady) ?order g ~s =
  if s < 2 then invalid_arg "Strategy.pc_schedule: s must be at least 2";
  Dmc_obs.Span.with_
    ~attrs:
      [
        ("policy", (match policy with Belady -> "belady" | Lru -> "lru"));
        ("s", string_of_int s);
      ]
    "strategy.pc_schedule"
  @@ fun () ->
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let uses = use_positions g order in
  let cursor = Array.make n 0 in
  let next_use v =
    let u = uses.(v) in
    if cursor.(v) < Array.length u then u.(cursor.(v)) else no_use
  in
  let red = Bitset.create n and blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let loaded = Bitset.create n in
  let pinned = Bitset.create n in
  let last_use = Array.make n 0 in
  let clock = ref 0 in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  let store_if_needed v ~future =
    if (future || Cdag.is_output g v) && not (Bitset.mem blue v) then begin
      emit (Pc_game.Store v);
      Bitset.add blue v
    end
  in
  let evict_one () =
    let best = ref (-1) and best_score = ref min_int in
    Bitset.iter
      (fun v ->
        if not (Bitset.mem pinned v) then begin
          let score =
            match policy with
            | Belady ->
                let nu = next_use v in
                if nu = no_use then
                  if Bitset.mem blue v || not (Cdag.is_output g v) then max_int
                  else max_int - 1
                else nu
            | Lru -> -last_use.(v)
          in
          if score > !best_score then begin
            best_score := score;
            best := v
          end
        end)
      red;
    if !best < 0 then failwith "Strategy.pc_schedule: S too small";
    let v = !best in
    store_if_needed v ~future:(next_use v <> no_use);
    emit (Pc_game.Delete v);
    Bitset.remove red v
  in
  let make_room () = while Bitset.cardinal red >= s do evict_one () done in
  let bring_in v =
    if not (Bitset.mem red v) then begin
      make_room ();
      if not (Bitset.mem blue v) then
        Budget.internal_error ~where:"Strategy.pc_schedule"
          "operand %d lost (n=%d, s=%d, clock=%d)" v n s !clock;
      emit (Pc_game.Load v);
      Bitset.add red v;
      Bitset.add loaded v
    end;
    incr clock;
    last_use.(v) <- !clock
  in
  let release v =
    if Bitset.mem red v && next_use v = no_use then begin
      store_if_needed v ~future:false;
      emit (Pc_game.Delete v);
      Bitset.remove red v
    end
  in
  Array.iteri
    (fun i v ->
      (match budget with None -> () | Some b -> Budget.tick b);
      make_room ();
      emit (Pc_game.Begin v);
      Bitset.add red v;
      Bitset.add pinned v;
      let preds = Cdag.pred_list g v in
      List.iter
        (fun u ->
          bring_in u;
          Bitset.add pinned u;
          emit (Pc_game.Absorb { v; pred = u });
          Dmc_obs.Counter.incr c_pc_absorbs;
          Bitset.remove pinned u)
        preds;
      emit (Pc_game.Finish v);
      incr clock;
      last_use.(v) <- !clock;
      Bitset.remove pinned v;
      List.iter
        (fun u ->
          let us = uses.(u) in
          while cursor.(u) < Array.length us && us.(cursor.(u)) <= i do
            cursor.(u) <- cursor.(u) + 1
          done)
        preds;
      List.iter release preds;
      release v)
    order;
  List.iter
    (fun v ->
      if Bitset.mem red v && not (Bitset.mem blue v) then begin
        emit (Pc_game.Store v);
        Bitset.add blue v
      end)
    (Cdag.outputs g);
  List.iter
    (fun v ->
      if not (Bitset.mem loaded v) then begin
        make_room ();
        emit (Pc_game.Load v);
        Bitset.add red v;
        emit (Pc_game.Delete v);
        Bitset.remove red v
      end)
    (Cdag.inputs g);
  List.rev !moves

let pc_io ?budget ?policy ?order g ~s =
  List.fold_left
    (fun acc m ->
      match (m : Pc_game.move) with
      | Pc_game.Load _ | Pc_game.Store _ -> acc + 1
      | _ -> acc)
    0
    (pc_schedule ?budget ?policy ?order g ~s)

let spmd g hier ~owner ?order () =
  if Hierarchy.n_levels hier <> 2 then
    invalid_arg "Strategy.spmd: hierarchy must have exactly two levels";
  let procs = Hierarchy.processors hier in
  if Hierarchy.count hier ~level:2 <> procs then
    invalid_arg "Strategy.spmd: need one level-2 memory per processor";
  let order = match order with Some o -> o | None -> default_order g in
  ignore (check_order g order);
  let n = Cdag.n_vertices g in
  let owner_of v =
    let p = owner v in
    if p < 0 || p >= procs then invalid_arg "Strategy.spmd: owner out of range";
    p
  in
  (* Which level-2 memories currently hold each vertex. *)
  let in_memory = Array.init procs (fun _ -> Bitset.create n) in
  let input_read = Bitset.create n in
  let moves = ref [] in
  let emit m = moves := m :: !moves in
  (* Make [v] present in memory [p]: read it from blue if it is an
     unread input, else fetch it from its owner's memory. *)
  let ensure_in_memory p v =
    if not (Bitset.mem in_memory.(p) v) then begin
      let home = owner_of v in
      if Cdag.is_input g v && not (Bitset.mem input_read v) then begin
        emit (Prbw_game.Input { unit_id = home; v });
        Bitset.add in_memory.(home) v;
        Bitset.add input_read v
      end;
      if not (Bitset.mem in_memory.(p) v) then begin
        if not (Bitset.mem in_memory.(home) v) then
          Budget.internal_error ~where:"Strategy.spmd"
            "operand %d not at its home memory %d (n=%d)" v home n;
        emit (Prbw_game.Remote_get { src = home; dst = p; v });
        Bitset.add in_memory.(p) v
      end
    end
  in
  Array.iter
    (fun v ->
      let p = owner_of v in
      let preds = Cdag.pred_list g v in
      List.iter
        (fun u ->
          ensure_in_memory p u;
          emit (Prbw_game.Move_up { level = 1; unit_id = p; v = u }))
        preds;
      emit (Prbw_game.Compute { proc = p; v });
      emit (Prbw_game.Move_down { level = 2; unit_id = p; v });
      Bitset.add in_memory.(p) v;
      if Cdag.is_output g v then emit (Prbw_game.Output { unit_id = p; v });
      List.iter
        (fun u -> emit (Prbw_game.Delete { level = 1; unit_id = p; v = u }))
        preds;
      emit (Prbw_game.Delete { level = 1; unit_id = p; v }))
    order;
  (* Whiten inputs nobody consumed. *)
  List.iter
    (fun v ->
      if not (Bitset.mem input_read v) then begin
        emit (Prbw_game.Input { unit_id = owner_of v; v });
        Bitset.add input_read v
      end)
    (Cdag.inputs g);
  List.rev !moves
