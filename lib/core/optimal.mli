module Budget := Dmc_util.Budget
module Cdag := Dmc_cdag.Cdag

(** Provably optimal pebble games on small CDAGs by explicit
    shortest-path search over game states.

    These engines establish the ground truth the validation experiments
    compare the lower-bound machinery against: for every tiny CDAG,
    [lower bound <= rbw_io <= any strategy's I/O] must hold, and
    [rb_io <= rbw_io] (forbidding recomputation can only increase
    I/O).

    The search is Dijkstra over game states with loads/stores of
    cost 1 and computes/deletes of cost 0.  Deletions are normalized to
    happen only when a placement finds the fast memory full — a
    standard no-loss transformation, since capacity only binds at
    placements — which keeps the state space finite and small.  State
    encoding packs the white/red/blue vertex sets into one [int], so
    {!rbw_io} accepts up to 20 vertices and {!rb_io} up to 31;
    [max_states] guards against blow-up. *)

exception Too_large of string
(** Raised when the graph exceeds the encodable size or the search
    visits more than [max_states] distinct states.

    All engines additionally accept a [budget] guard
    ({!Dmc_util.Budget.t}) ticked from their inner loops; deadline or
    node-budget exhaustion raises [Budget.Exhausted].  The
    result-typed wrappers in [Dmc_core.Bounds.Engine] convert both
    exception families into [Error] values. *)

val rbw_io : ?budget:Budget.t -> ?max_states:int -> Cdag.t -> s:int -> int
(** Minimum I/O of any complete red-blue-white game (Definition 4).
    [max_states] defaults to 2,000,000. *)

val rb_io : ?budget:Budget.t -> ?max_states:int -> Cdag.t -> s:int -> int
(** Minimum I/O of any complete Hong–Kung red-blue game (Definition 2),
    recomputation allowed.  The graph must satisfy the Hong–Kung
    convention ({!Dmc_cdag.Validate.is_hong_kung}); raises
    [Invalid_argument] otherwise. *)

val min_balanced_horizontal :
  ?budget:Budget.t -> ?slack:int -> Cdag.t -> procs:int -> int * int array
(** The minimum number of inter-node word transfers of any P-RBW game
    on [procs] nodes with private unbounded memories, sufficient
    registers and a {e balanced} work assignment (no processor fires
    more than [ceil(compute / procs) + slack] vertices; [slack]
    defaults to 0).

    With free vertical moves, the game collapses to choosing which
    processor fires each compute vertex: a value computed at [p] must
    reach every other node that consumes it at least once, while
    tagged inputs can be [Input]-ed into any memory directly from blue
    and cost nothing horizontally.  Convention: a computed value that a
    game round-trips through the blue storage ([Output] at [p],
    [Input] at [q]) still counts as one transfer into [q] — Definition
    6's blue level models the job's outside storage, not a second
    communication fabric, and any such route moves at least as many
    words.  The returned assignment array maps each vertex to its
    processor (inputs are placed greedily at a consumer).  Exhaustive
    over the [procs^compute] balanced assignments — at most 14 compute
    vertices.  Raises {!Too_large} beyond that, [Invalid_argument] for
    [procs < 1].

    Under that convention this is the exact optimum Theorem 7's
    horizontal bound must sit below; the tests check measured SPMD
    executions against it. *)
