module Cdag := Dmc_cdag.Cdag

(** Bound engines for the multi-processor game ({!Mp_game}, after
    arXiv 2409.03898) and the partial-computation game ({!Pc_game},
    after arXiv 2506.10854).

    The registry is deliberately separate from
    {!Bounds.governed_engines}: those engines answer the
    single-processor question "how much I/O does this CDAG force at
    capacity S", these answer the parallel questions "how much
    communication and how much time does it force at (p, S)".  Every
    engine still produces an ordinary {!Bounds.row} through the same
    fallback-ladder discipline (fresh budget per rung, unbudgeted
    terminal rungs, failure taxonomy in [attempts]), so the sweep,
    job-pool and report machinery consume the two families uniformly.

    Soundness of the communication lower bound rests on the simulation
    argument: one processor with the pooled fast memory of [p * S]
    words can replay any [p]-processor execution, so
    [IO_mp(p, S) >= IO_1(p * S)].  The bound is therefore monotone
    non-increasing in [p] and coincides with the sequential wavefront
    bound at [p = 1]. *)

type info = {
  name : string;
  kind : Bounds.kind;
  doc : string;  (** one line, shown by [dmc bounds --list-engines] *)
}

val engines : info list
(** [mp-comm-lb], [mp-comm-ub], [mp-time-lb], [mp-time-ub],
    [pc-io-lb], [pc-io-ub] — in presentation order. *)

val engine_names : string list

val find : string -> info option

val is_engine : string -> bool

val kind_of : string -> Bounds.kind option

val span : Cdag.t -> int
(** Critical-path length counting compute vertices — the
    parallelism-independent makespan floor used by [mp-time-lb]. *)

val row :
  ?timeout:float ->
  ?node_budget:int ->
  ?samples:int ->
  Cdag.t ->
  p:int ->
  s:int ->
  string ->
  Bounds.row
(** Run one engine at [(p, s)] under the governed ladder.  [timeout]
    and [node_budget] bound each non-terminal rung with a fresh
    {!Dmc_util.Budget.t}; [samples] (default 64) sizes the sampled
    wavefront rung.  Raises [Invalid_argument] on an unknown engine
    name or non-positive [p] / [s]. *)

val degraded_row :
  Cdag.t ->
  p:int ->
  s:int ->
  engine:string ->
  failure:Dmc_util.Budget.failure ->
  elapsed:float ->
  Bounds.row
(** The supervisor-side terminal rung for a lost worker, mirroring
    {!Bounds.degraded_row}: lower engines fall to their O(n) floors,
    upper engines to the trivial schedule when [s] admits one, with
    [failure] recorded as a failed ["worker"] rung. *)
