module Hierarchy := Dmc_machine.Hierarchy

(** The parallel lower bounds of Section 4: Theorems 5–7 lift a
    sequential (single-processor) bound or a [U(2S)] estimate to the
    vertical and horizontal data movement of any valid P-RBW game. *)

val vertical_from_sequential :
  hierarchy:Hierarchy.t -> level:int -> seq_lb:(s:int -> float) -> float
(** Theorem 5: the level-[l] unit with the most write-back traffic
    receives at least [IO_1(C, S_{l-1} N_{l-1}) / N_l] words, where
    [IO_1(C, S)] is the sequential I/O lower bound with [S] words of
    fast memory, supplied as [seq_lb].  Requires [2 <= level <= L]. *)

val vertical_from_u :
  hierarchy:Hierarchy.t -> level:int -> work:float -> u:float -> float
(** Theorem 6: with [U = U(C, 2 S_{l-1})] the largest 2S-partition
    subset, the busiest level-[l] unit moves at least
    [(|V| / (U N_l) - N_{l-1} / N_l) * S_{l-1}] words; clamped at 0. *)

val horizontal_from_u :
  hierarchy:Hierarchy.t -> work:float -> u:float -> float
(** Theorem 7: the level-[L] unit whose processor group computes the
    most fires at least [(|V| / (U P_i) - 1) * S_L] remote-get words,
    with [P_i = P / N_L] the group size; clamped at 0. *)

val per_processor_work : hierarchy:Hierarchy.t -> work:float -> float
(** [|V| / P]: the work of the busiest processor is at least this. *)

(** {1 Multi-processor game bounds (arXiv 2409.03898)}

    The MPP model of {!Mp_game}: [p] processors with private [S]-word
    fast memories communicating through one slow memory. *)

val mp_comm_from_sequential : p:int -> seq_lb:(s:int -> int) -> s:int -> int
(** Communication lower bound by simulation: a single processor whose
    fast memory is the {e union} of the [p] private memories ([p * S]
    red pebbles) can replay any [p]-processor game move-for-move with
    the same I/O, so [IO_mp(p, S) >= IO_1(p * S)].  [seq_lb] is any
    sound sequential lower bound (e.g. {!Wavefront.lower_bound} or
    {!Bounds.io_floor}).  Monotone non-increasing in [p], and at
    [p = 1] it is exactly the sequential bound. *)

val mp_time_lower :
  p:int -> g_cost:int -> work:int -> span:int -> comm_lb:int -> int
(** Makespan lower bound under the cost model [compute = 1,
    I/O = g_cost]: no schedule beats the critical path ([span],
    counting compute vertices), and the total busy time
    [work + g_cost * comm_lb] spread over [p] processors makes the
    busiest one take at least its [ceil]-share. *)
