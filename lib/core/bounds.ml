module Cdag = Dmc_cdag.Cdag

type report = {
  s : int;
  n_vertices : int;
  n_edges : int;
  io_floor : int;
  wavefront_lb : int;
  partition_lb : int option;
  partition_u_lb : int option;
  span_lb : int option;
  best_lb : int;
  belady_ub : int;
  lru_ub : int;
  trivial_ub : int;
  optimal_io : int option;
}

let io_floor g =
  let stored_outputs =
    List.length (List.filter (fun v -> not (Cdag.is_input g v)) (Cdag.outputs g))
  in
  Cdag.n_inputs g + stored_outputs

let analyze ?(exact_partition_limit = 9) ?(optimal_limit = 0) g ~s =
  let floor = io_floor g in
  let wavefront_lb = Wavefront.lower_bound g ~s in
  let small_enough = Cdag.n_compute g <= exact_partition_limit in
  let partition_lb =
    if small_enough then
      match Spartition.lower_bound_exact g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let partition_u_lb =
    if Cdag.n_compute g <= 22 && Cdag.n_vertices g <= 62 then
      match Spartition.lower_bound_u g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let span_lb =
    if Cdag.n_vertices g <= 16 then
      match Span.lower_bound g ~s with
      | lb -> Some lb
      | exception Optimal.Too_large _ -> None
    else None
  in
  let optimal_io =
    if optimal_limit > 0 && Cdag.n_vertices g <= min optimal_limit 20 then
      match Optimal.rbw_io g ~s with
      | io -> Some io
      | exception Optimal.Too_large _ -> None
    else None
  in
  let candidates =
    floor :: wavefront_lb
    :: List.filter_map Fun.id [ partition_lb; partition_u_lb; span_lb ]
  in
  {
    s;
    n_vertices = Cdag.n_vertices g;
    n_edges = Cdag.n_edges g;
    io_floor = floor;
    wavefront_lb;
    partition_lb;
    partition_u_lb;
    span_lb;
    best_lb = List.fold_left max 0 candidates;
    belady_ub = Strategy.io ~policy:Strategy.Belady g ~s;
    lru_ub = Strategy.io ~policy:Strategy.Lru g ~s;
    trivial_ub = Strategy.trivial_io g;
    optimal_io;
  }

let pp_report ppf r =
  let pp_opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some x -> Format.pp_print_int ppf x
  in
  Format.fprintf ppf
    "@[<v>CDAG: %d vertices, %d edges, S = %d@,\
     lower bounds: floor = %d, wavefront = %d, partition-H = %a, partition-U = %a, span = %a -> best = %d@,\
     upper bounds: belady = %d, lru = %d, trivial = %d@,\
     optimal: %a@]"
    r.n_vertices r.n_edges r.s r.io_floor r.wavefront_lb pp_opt r.partition_lb
    pp_opt r.partition_u_lb pp_opt r.span_lb r.best_lb r.belady_ub r.lru_ub
    r.trivial_ub pp_opt r.optimal_io

let report_to_json r =
  let module J = Dmc_util.Json in
  J.Obj
    [
      ("s", J.Int r.s);
      ("n_vertices", J.Int r.n_vertices);
      ("n_edges", J.Int r.n_edges);
      ( "lower_bounds",
        J.Obj
          [
            ("io_floor", J.Int r.io_floor);
            ("wavefront", J.Int r.wavefront_lb);
            ("partition_h", J.opt (fun x -> J.Int x) r.partition_lb);
            ("partition_u", J.opt (fun x -> J.Int x) r.partition_u_lb);
            ("span", J.opt (fun x -> J.Int x) r.span_lb);
            ("best", J.Int r.best_lb);
          ] );
      ( "upper_bounds",
        J.Obj
          [
            ("belady", J.Int r.belady_ub);
            ("lru", J.Int r.lru_ub);
            ("trivial", J.Int r.trivial_ub);
          ] );
      ("optimal_io", J.opt (fun x -> J.Int x) r.optimal_io);
    ]

(* ------------------------------------------------------------------ *)
(* Result-typed engine API and governed (graceful-degradation)        *)
(* analysis.                                                          *)

module Budget = Dmc_util.Budget

type failure = Budget.failure =
  | Timeout
  | Budget_exhausted
  | Cancelled
  | Too_large of string
  | Invalid_input of string
  | Internal of string

module Engine = struct
  type 'a outcome = ('a, failure) result

  let run ?budget f =
    let go () =
      try Ok (f ()) with
      | Budget.Exhausted e -> Error e
      | Budget.Internal_error { where; details } ->
          Error (Internal (where ^ ": " ^ details))
      | Optimal.Too_large msg -> Error (Too_large msg)
      | Stack_overflow ->
          Error (Too_large "search recursion exceeded the OCaml stack")
      | Invalid_argument msg | Failure msg -> Error (Invalid_input msg)
    in
    match budget with
    | None -> go ()
    | Some b -> ( match Budget.check b with Some e -> Error e | None -> go ())

  let rbw_io ?budget ?max_states g ~s =
    run ?budget (fun () -> Optimal.rbw_io ?budget ?max_states g ~s)

  let rb_io ?budget ?max_states g ~s =
    run ?budget (fun () -> Optimal.rb_io ?budget ?max_states g ~s)

  let min_balanced_horizontal ?budget ?slack g ~procs =
    run ?budget (fun () ->
        Optimal.min_balanced_horizontal ?budget ?slack g ~procs)

  let span_lb ?budget ?max_nodes g ~s =
    run ?budget (fun () -> Span.lower_bound ?budget ?max_nodes g ~s)

  let partition_lb ?budget ?max_nodes g ~s =
    run ?budget (fun () -> Spartition.lower_bound_exact ?budget ?max_nodes g ~s)

  let partition_u_lb ?budget g ~s =
    run ?budget (fun () -> Spartition.lower_bound_u ?budget g ~s)

  let wavefront_lb ?budget ?samples ?rng g ~s =
    run ?budget (fun () -> Wavefront.lower_bound ?budget ?samples ?rng g ~s)

  let strategy_io ?budget ?policy ?order g ~s =
    run ?budget (fun () -> Strategy.io ?budget ?policy ?order g ~s)
end

type kind = Lower | Upper | Exact

let kind_to_string = function Lower -> "lb" | Upper -> "ub" | Exact -> "exact"

type row = {
  engine : string;
  kind : kind;
  value : int option;
  rung : string;
  attempts : (string * failure) list;
  elapsed : float;
}

type governed = {
  gov_s : int;
  gov_n_vertices : int;
  gov_n_edges : int;
  gov_rows : row list;
  gov_best_lb : int;
  gov_best_ub : int option;
}

let failure_token = function
  | Timeout -> "timeout"
  | Budget_exhausted -> "budget"
  | Cancelled -> "cancelled"
  | Too_large _ -> "skipped"
  | Invalid_input _ -> "invalid"
  | Internal _ -> "internal"

let row_status r =
  match r.attempts with
  | [] -> "ok"
  | (_, first) :: _ -> (
      match r.value with
      | Some _ ->
          Printf.sprintf "%s(fallback=%s)" (failure_token first) r.rung
      | None -> failure_token first)

let governed_engines =
  [
    ("floor", Lower);
    ("wavefront", Lower);
    ("partition-h", Lower);
    ("partition-u", Lower);
    ("span", Lower);
    ("optimal", Exact);
    ("belady", Upper);
    ("lru", Upper);
  ]

let governed_max_indeg g =
  Cdag.fold_vertices g
    (fun acc v ->
      if Cdag.is_input g v then acc else max acc (Cdag.in_degree g v))
    0

let c_ticks = Dmc_obs.Counter.make "budget.ticks"

let governed_row ?timeout ?node_budget ?(samples = 64) ?wavefront g ~s engine =
  let fresh_budget () =
    match (timeout, node_budget) with
    | None, None -> None
    | _ -> Some (Budget.create ?deadline:timeout ?nodes:node_budget ())
  in
  let floor = io_floor g in
  (* Each ladder rung gets its own fresh budget: a rung that times out
     must not also starve its fallback.  The first rung that succeeds
     wins the row. *)
  let run_ladder engine kind rungs =
    let t0 = Budget.now () in
    let rec go attempts = function
      | [] ->
          {
            engine;
            kind;
            value = None;
            rung = "-";
            attempts = List.rev attempts;
            elapsed = Budget.now () -. t0;
          }
      | (rung, f) :: rest -> (
          (* Terminal rungs (the I/O floor, the trivial schedule) are
             O(n) and exist precisely so a starved budget still yields a
             sound value — they run outside the budget.  The floor
             engine's own row is terminal in the same sense: its value
             is already computed, and budgeting it would let a fully
             expired deadline (the check races the clock even for a
             pure return) strip the one row that may never lose its
             value. *)
          let budget =
            if rung = "floor" || rung = "trivial" || engine = "floor" then None
            else fresh_budget ()
          in
          let outcome =
            Dmc_obs.Span.with_
              ~attrs:[ ("engine", engine); ("rung", rung) ]
              (engine ^ "/" ^ rung)
              (fun () ->
                let r = Engine.run ?budget (fun () -> f budget) in
                (match budget with
                | Some b ->
                    let spent = Budget.spent b in
                    Dmc_obs.Counter.add c_ticks spent;
                    Dmc_obs.Span.note "ticks" (string_of_int spent)
                | None -> ());
                (match r with
                | Ok _ -> Dmc_obs.Span.note "outcome" "ok"
                | Error e -> Dmc_obs.Span.note "outcome" (failure_token e));
                r)
          in
          match outcome with
          | Ok v ->
              {
                engine;
                kind;
                value = Some v;
                rung;
                attempts = List.rev attempts;
                elapsed = Budget.now () -. t0;
              }
          | Error e -> go ((rung, e) :: attempts) rest)
    in
    go [] rungs
  in
  let floor_rung = ("floor", fun _ -> floor) in
  let wavefront_ladder () =
    run_ladder "wavefront" Lower
      [
        ( "exact",
          fun b ->
            Wavefront.lower_bound_via (Wavefront.wmax_exact ?budget:b) g ~s );
        ( "sampled",
          fun b ->
            let rng = Dmc_util.Rng.create 0x5eed in
            Wavefront.lower_bound_via
              (fun g' -> Wavefront.wmax_sampled_anytime ?budget:b rng g' ~samples)
              g ~s );
        floor_rung;
      ]
  in
  (* The wavefront's achieved value is the middle rung of every other
     lower-bound ladder (it is a sound lower bound for the same
     quantity).  [analyze_governed] precomputes it once and passes it
     in; an isolated worker computing a single row derives it on
     demand, which is value-deterministic (fixed sampler seed) even if
     the work is repeated. *)
  let wavefront_value =
    lazy
      (match wavefront with
      | Some v -> v
      | None -> (
          match (wavefront_ladder ()).value with Some v -> v | None -> floor))
  in
  let wf_rung = ("wavefront", fun _ -> Lazy.force wavefront_value) in
  let lb_ladder name exact_fn =
    run_ladder name Lower [ ("exact", exact_fn); wf_rung; floor_rung ]
  in
  (* The trivial schedule only exists when every vertex's operands fit
     beside it, so the upper-bound ladder's last rung still has a
     precondition. *)
  let max_indeg = governed_max_indeg g in
  let trivial_rung =
    ( "trivial",
      fun _ ->
        if s >= max_indeg + 1 then Strategy.trivial_io g
        else failwith "Bounds: S too small for the trivial schedule" )
  in
  match engine with
  | "floor" -> run_ladder "floor" Lower [ ("exact", fun _ -> floor) ]
  | "wavefront" -> wavefront_ladder ()
  | "partition-h" ->
      lb_ladder "partition-h" (fun b -> Spartition.lower_bound_exact ?budget:b g ~s)
  | "partition-u" ->
      lb_ladder "partition-u" (fun b -> Spartition.lower_bound_u ?budget:b g ~s)
  | "span" -> lb_ladder "span" (fun b -> Span.lower_bound ?budget:b g ~s)
  | "optimal" ->
      run_ladder "optimal" Exact
        [ ("exact", fun b -> Optimal.rbw_io ?budget:b g ~s); wf_rung; floor_rung ]
  | "belady" ->
      run_ladder "belady" Upper
        [
          ("exact", fun b -> Strategy.io ?budget:b ~policy:Strategy.Belady g ~s);
          trivial_rung;
        ]
  | "lru" ->
      run_ladder "lru" Upper
        [
          ("exact", fun b -> Strategy.io ?budget:b ~policy:Strategy.Lru g ~s);
          trivial_rung;
        ]
  | other -> invalid_arg ("Bounds.governed_row: unknown engine " ^ other)

let degraded_row g ~s ~engine ~kind ~failure ~elapsed =
  let attempts = [ ("worker", failure) ] in
  match kind with
  | Lower | Exact ->
      {
        engine;
        kind;
        value = Some (io_floor g);
        rung = "floor";
        attempts;
        elapsed;
      }
  | Upper ->
      if s >= governed_max_indeg g + 1 then
        {
          engine;
          kind;
          value = Some (Strategy.trivial_io g);
          rung = "trivial";
          attempts;
          elapsed;
        }
      else { engine; kind; value = None; rung = "-"; attempts; elapsed }

let assemble_governed g ~s rows =
  let best_lb =
    List.fold_left
      (fun acc r ->
        match (r.kind, r.value) with
        | (Lower | Exact), Some v -> max acc v
        | _ -> acc)
      0 rows
  in
  let best_ub =
    List.fold_left
      (fun acc r ->
        let candidate =
          match (r.kind, r.value) with
          | Upper, Some v -> Some v
          | Exact, Some v when r.rung = "exact" -> Some v
          | _ -> None
        in
        match (acc, candidate) with
        | None, c -> c
        | Some a, Some c -> Some (min a c)
        | (Some _ as a), None -> a)
      None rows
  in
  {
    gov_s = s;
    gov_n_vertices = Cdag.n_vertices g;
    gov_n_edges = Cdag.n_edges g;
    gov_rows = rows;
    gov_best_lb = best_lb;
    gov_best_ub = best_ub;
  }

let analyze_governed ?timeout ?node_budget ?(samples = 64) g ~s =
  Dmc_obs.Span.with_
    ~attrs:[ ("s", string_of_int s); ("n", string_of_int (Cdag.n_vertices g)) ]
    "bounds.analyze_governed"
  @@ fun () ->
  (* The wavefront row runs first; its achieved value is reused as the
     middle rung of every other lower-bound ladder. *)
  let wavefront_row = governed_row ?timeout ?node_budget ~samples g ~s "wavefront" in
  let wavefront_value =
    match wavefront_row.value with Some v -> v | None -> io_floor g
  in
  let rows =
    List.map
      (fun (name, _) ->
        if name = "wavefront" then wavefront_row
        else
          governed_row ?timeout ?node_budget ~samples ~wavefront:wavefront_value
            g ~s name)
      governed_engines
  in
  assemble_governed g ~s rows

let kind_of_string = function
  | "lb" -> Some Lower
  | "ub" -> Some Upper
  | "exact" -> Some Exact
  | _ -> None

let row_to_json r =
  let module J = Dmc_util.Json in
  J.Obj
    [
      ("engine", J.String r.engine);
      ("kind", J.String (kind_to_string r.kind));
      ("value", J.opt (fun v -> J.Int v) r.value);
      ("status", J.String (row_status r));
      ("rung", J.String r.rung);
      ( "failed_rungs",
        J.List
          (List.map
             (fun (rung, e) ->
               J.Obj
                 [
                   ("rung", J.String rung);
                   ("failure", J.String (Budget.failure_to_string e));
                 ])
             r.attempts) );
      ("elapsed_s", J.Float r.elapsed);
    ]

let row_of_json json =
  let module J = Dmc_util.Json in
  let ( let* ) = Option.bind in
  let* engine = Option.bind (J.mem json "engine") J.as_string in
  let* kind = Option.bind (Option.bind (J.mem json "kind") J.as_string) kind_of_string in
  let value =
    match J.mem json "value" with Some j -> J.as_int j | None -> None
  in
  let* rung = Option.bind (J.mem json "rung") J.as_string in
  let* elapsed = Option.bind (J.mem json "elapsed_s") J.as_float in
  let* attempts =
    match Option.bind (J.mem json "failed_rungs") J.as_list with
    | None -> None
    | Some l ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* rung = Option.bind (J.mem entry "rung") J.as_string in
            let* failure =
              Option.bind
                (Option.bind (J.mem entry "failure") J.as_string)
                Budget.failure_of_string
            in
            Some ((rung, failure) :: acc))
          (Some []) l
        |> Option.map List.rev
  in
  Some { engine; kind; value; rung; attempts; elapsed }

let pp_governed ppf gr =
  let module T = Dmc_util.Table in
  let t = T.create ~headers:[ "engine"; "kind"; "value"; "status"; "rung"; "time" ] in
  T.set_align t [ T.Left; T.Left; T.Right; T.Left; T.Left; T.Right ];
  List.iter
    (fun r ->
      T.add_row t
        [
          r.engine;
          kind_to_string r.kind;
          (match r.value with Some v -> string_of_int v | None -> "-");
          row_status r;
          r.rung;
          Printf.sprintf "%.2fs" r.elapsed;
        ])
    gr.gov_rows;
  Format.fprintf ppf "CDAG: %d vertices, %d edges, S = %d@." gr.gov_n_vertices
    gr.gov_n_edges gr.gov_s;
  Format.pp_print_string ppf (T.render t);
  Format.fprintf ppf "best lower bound = %d" gr.gov_best_lb;
  (match gr.gov_best_ub with
  | Some ub -> Format.fprintf ppf ", best upper bound = %d" ub
  | None -> ());
  Format.fprintf ppf "@."

let governed_to_json gr =
  let module J = Dmc_util.Json in
  let row_json = row_to_json in
  J.Obj
    [
      ("s", J.Int gr.gov_s);
      ("n_vertices", J.Int gr.gov_n_vertices);
      ("n_edges", J.Int gr.gov_n_edges);
      ("rows", J.List (List.map row_json gr.gov_rows));
      ("best_lb", J.Int gr.gov_best_lb);
      ("best_ub", J.opt (fun v -> J.Int v) gr.gov_best_ub);
    ]

let certify_wavefront ?(samples = 64) g ~s =
  ignore s;
  let part, _ = Dmc_cdag.Subgraph.drop_inputs g in
  let stripped = part.Dmc_cdag.Subgraph.graph in
  let n = Cdag.n_vertices stripped in
  if n = 0 then true
  else begin
    let candidates =
      if n <= Wavefront.exact_threshold then List.init n Fun.id
      else begin
        let rng = Dmc_util.Rng.create 0x5eed in
        List.init samples (fun _ -> Dmc_util.Rng.int rng n)
      end
    in
    let best = ref 0 and best_w = ref (-1) in
    List.iter
      (fun x ->
        let w = Wavefront.min_wavefront stripped x in
        if w > !best_w then begin
          best_w := w;
          best := x
        end)
      candidates;
    let witness = Wavefront.witness stripped !best in
    Wavefront.verify_witness stripped witness
    && (witness.Wavefront.paths = [] || List.length witness.Wavefront.paths = !best_w)
  end
