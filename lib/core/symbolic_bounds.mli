module Expr := Dmc_symbolic.Expr

(** Symbolic recombination: closed-form lower bounds for regular CDAGs
    at sizes that can never be materialized.

    Theorem 2 decomposes a CDAG into disjoint pieces and sums per-piece
    I/O lower bounds.  For the regular families — stencil blocks, FFT
    rank bands, reduction-tree groups, lattice tiles, chain segments —
    the pieces fall into a handful of isomorphism classes whose
    isomorphisms preserve the Theorem-2 tagging, so the induced pieces
    freeze to byte-identical structures and the (deterministic)
    wavefront engine gives every copy the same value as its class
    representative.  The whole-graph bound becomes

    {v sum over classes of count(class) * engine(representative) v}

    with the counts closed forms in the size variable [n] (built from
    {!Dmc_symbolic.Expr}, heavy on [floor(n / w)] factors).  Only one
    small representative per class is ever materialized: a bound for a
    billion-node Jacobi instance costs a few tile analyses and an
    expression evaluation.

    The same module computes the {e numeric reference} — the identical
    partition over the materialized instance, every piece bounded by
    the identical engine — which must agree with the symbolic value
    {e exactly} on any size small enough to materialize.  That
    equality is the cross-validation the test suite and the CI leg
    enforce; it holds because both sides run the same engine on the
    same frozen structures, not because of any numeric tolerance. *)

type cls = {
  cls_name : string;
  cls_count : Expr.t;
      (** copies of this class as a closed form in [Var "n"] — the
          size parameter for chain/tree/jacobi, the side for (square)
          diamond, the row width [2^K] for fft *)
  cls_count_now : int;  (** the count evaluated at this instance *)
  cls_bound : int;  (** engine bound of the class representative *)
  cls_tile_vertices : int;
}

type t = {
  family : string;
  spec : string;
  size : int;
  s : int;
  tile : int;
  samples : int;
  formula : Expr.t;  (** simplified [sum count_c * bound_c] in [n] *)
  value : int;  (** the formula at this instance — a valid I/O bound *)
  classes : cls list;
  dropped : string option;
      (** pieces bounded by the trivial 0 (e.g. the reduction tree's
          top recombination piece); [None] when the class sum covers
          every piece with an engine bound *)
  n_vertices : int;  (** instance size, from the implicit generator *)
}

val families : string list
(** chain, tree, diamond (square), fft, jacobi1d/2d/3d.  matmul is
    deliberately absent: its per-tile wavefront sums add nothing over
    the analytic [Formulas.matmul_lb], which stays the tight bound. *)

val supports : string -> bool

val default_samples : int
(** 8 — fewer than the numeric CLI default because each sample runs on
    a tile-sized graph and only class representatives are analyzed. *)

val bound :
  ?samples:int -> ?tile:int -> spec:string -> s:int -> unit -> (t, string) result
(** Build the plan for [spec] (a workload spec; trailing parameters
    default as in {!Dmc_gen.Workload.parse_implicit}), bound one
    representative per class, and recombine.  [tile] is the block
    width (stages per band for fft); the default scales with [s] and
    is capped so representatives stay small.  Cost is independent of
    the instance size. *)

val numeric_reference :
  ?samples:int -> ?tile:int -> spec:string -> s:int -> unit -> (int, string) result
(** Materialize the instance, apply the same partition, bound every
    piece with the same engine (dropped pieces contribute the same
    trivial 0), and sum.  Must equal {!bound}'s [value] exactly;
    requires a materializable size. *)

val to_json : t -> Dmc_util.Json.t
