module Budget := Dmc_util.Budget
module Cdag := Dmc_cdag.Cdag

(** Savage's S-span lower-bound technique (Section 6's related work;
    Savage 1995/1998), implemented as a third independent bound engine.

    The {e S-span} [ρ(S, G)] is the largest number of compute vertices
    that can fire, using only computes and deletes (no I/O), starting
    from the most favourable placement of [S] red pebbles.  Any
    complete no-recomputation game splits into phases of [S] I/Os, and
    a phase that starts with at most [S] pebbles can fire at most
    [ρ(2S, G)] vertices — the [S] resident values plus the [S] values
    moved during the phase act as the starting pebbles.  Hence

    {v  Q >= S * (|V - I| / ρ(2S, G) - 1)  v}

    mirroring Corollary 1 with [ρ(2S)] in place of [U(2S)]. *)

val s_span : ?budget:Budget.t -> ?max_nodes:int -> Cdag.t -> s:int -> int
(** [ρ(S, G)] by exhaustive search: branch over which vertex to fire
    next from the current pebble multiset (with the standard
    delete-only-when-full normalization), over all starting placements
    — implemented as a DFS over (fired-set, pebble-set) states with
    memoization.  Inputs carry no white pebbles here: a starting pebble
    may sit on {e any} vertex.  Practical for graphs of at most 20
    vertices; raises {!Optimal.Too_large} beyond [max_nodes] states
    (default 2,000,000). *)

val lower_bound : ?budget:Budget.t -> ?max_nodes:int -> Cdag.t -> s:int -> int
(** [S * ceil(|V - I| / ρ(2S) - 1)], clamped at 0. *)
