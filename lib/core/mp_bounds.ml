module Cdag = Dmc_cdag.Cdag
module Budget = Dmc_util.Budget

type info = {
  name : string;
  kind : Bounds.kind;
  doc : string;
}

let engines =
  [
    {
      name = "mp-comm-lb";
      kind = Bounds.Lower;
      doc =
        "communication LB: sequential wavefront bound at capacity p*S \
         (one processor with the pooled fast memory simulates the game)";
    };
    {
      name = "mp-comm-ub";
      kind = Bounds.Upper;
      doc =
        "communication UB: I/O of a valid p-processor Belady schedule \
         (cross-processor values travel store -> load through slow memory)";
    };
    {
      name = "mp-time-lb";
      kind = Bounds.Lower;
      doc =
        "makespan LB: max of the critical path and the busiest \
         processor's ceil-share of compute + g*comm work";
    };
    {
      name = "mp-time-ub";
      kind = Bounds.Upper;
      doc =
        "makespan UB: list-scheduling makespan of the replayed \
         p-processor Belady schedule (compute = 1, I/O = g)";
    };
    {
      name = "pc-io-lb";
      kind = Bounds.Lower;
      doc =
        "partial-computation I/O LB: the I/O floor (inputs read + \
         outputs written; S-partition arguments do not survive partial \
         recomputation)";
    };
    {
      name = "pc-io-ub";
      kind = Bounds.Upper;
      doc =
        "partial-computation I/O UB: I/O of a valid Begin/Absorb/Finish \
         Belady schedule (two red pebbles cover any in-degree)";
    };
  ]

let engine_names = List.map (fun e -> e.name) engines

let find name = List.find_opt (fun e -> e.name = name) engines

let is_engine name = find name <> None

let kind_of name = Option.map (fun e -> e.kind) (find name)

(* Critical path length in compute vertices: a makespan floor under
   unit compute cost, independent of p and S. *)
let span g =
  let depth = Array.make (Cdag.n_vertices g) 0 in
  let best = ref 0 in
  Array.iter
    (fun v ->
      if not (Cdag.is_input g v) then begin
        let d = 1 + Cdag.fold_pred g v (fun acc u -> max acc depth.(u)) 0 in
        depth.(v) <- d;
        if d > !best then best := d
      end)
    (Dmc_cdag.Topo.order g);
  !best

let g_cost = 1

(* The same ladder discipline as {!Bounds.governed_row}: each rung
   gets a fresh budget so a starved rung never starves its fallback,
   and the first rung that succeeds wins the row. *)
let row ?timeout ?node_budget ?(samples = 64) g ~p ~s engine =
  if p <= 0 then invalid_arg "Mp_bounds.row: p must be positive";
  if s <= 0 then invalid_arg "Mp_bounds.row: s must be positive";
  let fresh_budget () =
    match (timeout, node_budget) with
    | None, None -> None
    | _ -> Some (Budget.create ?deadline:timeout ?nodes:node_budget ())
  in
  let floor = Bounds.io_floor g in
  let kind =
    match kind_of engine with
    | Some k -> k
    | None -> invalid_arg ("Mp_bounds.row: unknown engine " ^ engine)
  in
  let run_ladder rungs =
    let t0 = Budget.now () in
    let rec go attempts = function
      | [] ->
          {
            Bounds.engine;
            kind;
            value = None;
            rung = "-";
            attempts = List.rev attempts;
            elapsed = Budget.now () -. t0;
          }
      | (rung, f) :: rest -> (
          (* Terminal rungs are O(n + e) and exist so a starved budget
             still yields a sound value — they run outside it. *)
          let budget =
            if rung = "floor" || rung = "trivial" then None else fresh_budget ()
          in
          let outcome =
            Dmc_obs.Span.with_
              ~attrs:[ ("engine", engine); ("rung", rung) ]
              (engine ^ "/" ^ rung)
              (fun () -> Bounds.Engine.run ?budget (fun () -> f budget))
          in
          match outcome with
          | Ok v ->
              {
                Bounds.engine;
                kind;
                value = Some v;
                rung;
                attempts = List.rev attempts;
                elapsed = Budget.now () -. t0;
              }
          | Error e -> go ((rung, e) :: attempts) rest)
    in
    go [] rungs
  in
  let floor_rung = ("floor", fun _ -> floor) in
  (* IO_mp(p, S) >= IO_1(p * S): the pooled-memory simulation. *)
  let comm_lb_exact b =
    Parallel_bounds.mp_comm_from_sequential ~p
      ~seq_lb:(fun ~s ->
        Wavefront.lower_bound_via (Wavefront.wmax_exact ?budget:b) g ~s)
      ~s
    |> max floor
  in
  let comm_lb_sampled b =
    let rng = Dmc_util.Rng.create 0x5eed in
    Parallel_bounds.mp_comm_from_sequential ~p
      ~seq_lb:(fun ~s ->
        Wavefront.lower_bound_via
          (fun g' -> Wavefront.wmax_sampled_anytime ?budget:b rng g' ~samples)
          g ~s)
      ~s
    |> max floor
  in
  let max_indeg =
    Cdag.fold_vertices g
      (fun acc v ->
        if Cdag.is_input g v then acc else max acc (Cdag.in_degree g v))
      0
  in
  let work = Cdag.n_compute g in
  let time_lb ~comm_lb =
    Parallel_bounds.mp_time_lower ~p ~g_cost ~work ~span:(span g) ~comm_lb
  in
  let replay_makespan moves =
    match Mp_game.run ~g_cost g ~p ~s moves with
    | Ok stats -> stats.Mp_game.makespan
    | Error e ->
        Budget.internal_error ~where:"Mp_bounds"
          "schedule rejected at step %d: %s" e.Mp_game.step e.Mp_game.reason
  in
  match engine with
  | "mp-comm-lb" ->
      run_ladder
        [ ("exact", comm_lb_exact); ("sampled", comm_lb_sampled); floor_rung ]
  | "mp-comm-ub" ->
      run_ladder
        [
          ( "belady",
            fun b ->
              Strategy.mp_io ?budget:b ~policy:Strategy.Belady g ~p ~s );
          ( "trivial",
            fun _ ->
              if s >= max_indeg + 1 then Strategy.mp_trivial_io g
              else failwith "Mp_bounds: S too small for the trivial schedule" );
        ]
  | "mp-time-lb" ->
      run_ladder
        [
          ("exact", fun b -> time_lb ~comm_lb:(comm_lb_exact b));
          ("sampled", fun b -> time_lb ~comm_lb:(comm_lb_sampled b));
          ("floor", fun _ -> time_lb ~comm_lb:floor);
        ]
  | "mp-time-ub" ->
      run_ladder
        [
          ( "belady",
            fun b ->
              replay_makespan
                (Strategy.mp_schedule ?budget:b ~policy:Strategy.Belady g ~p ~s)
          );
          ( "trivial",
            fun _ ->
              if s >= max_indeg + 1 then
                replay_makespan (Strategy.mp_trivial g ~p)
              else failwith "Mp_bounds: S too small for the trivial schedule" );
        ]
  | "pc-io-lb" -> run_ladder [ floor_rung ]
  | "pc-io-ub" ->
      run_ladder
        [
          ( "belady",
            fun b -> Strategy.pc_io ?budget:b ~policy:Strategy.Belady g ~s );
          ( "trivial",
            fun _ ->
              if s >= 2 then Strategy.trivial_io g
              else failwith "Mp_bounds: S too small for the pc schedule" );
        ]
  | _ -> assert false (* kind_of validated the name above *)

(* Supervisor-side terminal rung for a lost worker, mirroring
   {!Bounds.degraded_row}: lower engines fall to their floors, upper
   engines to the trivial schedule when [s] admits one. *)
let degraded_row g ~p ~s ~engine ~failure ~elapsed =
  let kind =
    match kind_of engine with
    | Some k -> k
    | None -> invalid_arg ("Mp_bounds.degraded_row: unknown engine " ^ engine)
  in
  let attempts = [ ("worker", failure) ] in
  let mk value rung = { Bounds.engine; kind; value; rung; attempts; elapsed } in
  let max_indeg =
    Cdag.fold_vertices g
      (fun acc v ->
        if Cdag.is_input g v then acc else max acc (Cdag.in_degree g v))
      0
  in
  let floor = Bounds.io_floor g in
  match engine with
  | "mp-comm-lb" | "pc-io-lb" -> mk (Some floor) "floor"
  | "mp-time-lb" ->
      mk
        (Some
           (Parallel_bounds.mp_time_lower ~p ~g_cost ~work:(Cdag.n_compute g)
              ~span:(span g) ~comm_lb:floor))
        "floor"
  | "mp-comm-ub" ->
      if s >= max_indeg + 1 then mk (Some (Strategy.mp_trivial_io g)) "trivial"
      else mk None "-"
  | "mp-time-ub" ->
      if s >= max_indeg + 1 then
        match Mp_game.run ~g_cost g ~p ~s (Strategy.mp_trivial g ~p) with
        | Ok stats -> mk (Some stats.Mp_game.makespan) "trivial"
        | Error _ -> mk None "-"
      else mk None "-"
  | "pc-io-ub" ->
      if s >= 2 then mk (Some (Strategy.trivial_io g)) "trivial"
      else mk None "-"
  | _ -> assert false
