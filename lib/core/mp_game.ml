module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag

type move =
  | Load of { proc : int; v : Cdag.vertex }
  | Store of { proc : int; v : Cdag.vertex }
  | Compute of { proc : int; v : Cdag.vertex }
  | Delete of { proc : int; v : Cdag.vertex }

let pp_move ppf = function
  | Load { proc; v } -> Format.fprintf ppf "p%d: load %d" proc v
  | Store { proc; v } -> Format.fprintf ppf "p%d: store %d" proc v
  | Compute { proc; v } -> Format.fprintf ppf "p%d: compute %d" proc v
  | Delete { proc; v } -> Format.fprintf ppf "p%d: delete %d" proc v

type stats = {
  loads : int;
  stores : int;
  io : int;
  computes : int;
  max_red : int;
  per_proc_io : int array;
  per_proc_computes : int array;
  makespan : int;
}

type error = { step : int; reason : string }

let run ?(g_cost = 1) g ~p ~s moves =
  if p <= 0 then invalid_arg "Mp_game.run: p must be positive";
  if s <= 0 then invalid_arg "Mp_game.run: s must be positive";
  if g_cost < 0 then invalid_arg "Mp_game.run: g_cost must be non-negative";
  let n = Cdag.n_vertices g in
  let red = Array.init p (fun _ -> Bitset.create n) in
  let blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  let computed = Bitset.create n in
  let input_read = Bitset.create n in
  (* Availability time of each blue value: inputs are resident in slow
     memory from the start, computed values only once a store to them
     completes.  A load's transfer cannot begin before the value is
     available, which is what serializes cross-processor
     communication in the makespan. *)
  let blue_at = Array.make n 0 in
  let clock = Array.make p 0 in
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and max_red = ref 0 in
  let per_io = Array.make p 0 and per_comp = Array.make p 0 in
  let exception Fail of error in
  let fail step fmt = Format.kasprintf (fun reason -> raise (Fail { step; reason })) fmt in
  let check_move step proc v =
    if proc < 0 || proc >= p then fail step "processor %d out of range (p = %d)" proc p;
    if v < 0 || v >= n then fail step "vertex %d out of range" v
  in
  let place step proc v =
    if not (Bitset.mem red.(proc) v) then begin
      if Bitset.cardinal red.(proc) >= s then
        fail step "no free red pebble on processor %d (S = %d)" proc s;
      Bitset.add red.(proc) v;
      if Bitset.cardinal red.(proc) > !max_red then
        max_red := Bitset.cardinal red.(proc)
    end
  in
  try
    List.iteri
      (fun step move ->
        match move with
        | Load { proc; v } ->
            check_move step proc v;
            if not (Bitset.mem blue v) then
              fail step "load %d: no blue pebble (value never communicated)" v;
            place step proc v;
            if Cdag.is_input g v then Bitset.add input_read v;
            incr loads;
            per_io.(proc) <- per_io.(proc) + 1;
            clock.(proc) <- max clock.(proc) blue_at.(v) + g_cost
        | Store { proc; v } ->
            check_move step proc v;
            if not (Bitset.mem red.(proc) v) then
              fail step "store %d: no red pebble on processor %d" v proc;
            incr stores;
            per_io.(proc) <- per_io.(proc) + 1;
            clock.(proc) <- clock.(proc) + g_cost;
            if not (Bitset.mem blue v) then begin
              Bitset.add blue v;
              blue_at.(v) <- clock.(proc)
            end
        | Compute { proc; v } ->
            check_move step proc v;
            if Cdag.is_input g v then fail step "compute %d: inputs cannot fire" v;
            if Bitset.mem computed v then
              fail step "compute %d: already computed (recomputation forbidden)" v;
            let missing =
              Cdag.fold_pred g v
                (fun acc u -> if Bitset.mem red.(proc) u then acc else u :: acc)
                []
            in
            (match missing with
            | u :: _ ->
                fail step "compute %d: predecessor %d not red on processor %d" v u proc
            | [] ->
                place step proc v;
                Bitset.add computed v;
                incr computes;
                per_comp.(proc) <- per_comp.(proc) + 1;
                clock.(proc) <- clock.(proc) + 1)
        | Delete { proc; v } ->
            check_move step proc v;
            if not (Bitset.mem red.(proc) v) then
              fail step "delete %d: no red pebble on processor %d" v proc;
            Bitset.remove red.(proc) v)
      moves;
    let finish = List.length moves in
    List.iter
      (fun v ->
        if not (Bitset.mem blue v) then
          fail finish "output %d has no blue pebble at the end" v)
      (Cdag.outputs g);
    List.iter
      (fun v ->
        if not (Bitset.mem input_read v) then
          fail finish "input %d was never loaded by any processor" v)
      (Cdag.inputs g);
    Ok
      {
        loads = !loads;
        stores = !stores;
        io = !loads + !stores;
        computes = !computes;
        max_red = !max_red;
        per_proc_io = per_io;
        per_proc_computes = per_comp;
        makespan = Array.fold_left max 0 clock;
      }
  with Fail e -> Error e

let validate ?g_cost g ~p ~s moves =
  match run ?g_cost g ~p ~s moves with Ok _ -> None | Error e -> Some e

let io_of ?g_cost g ~p ~s moves =
  match run ?g_cost g ~p ~s moves with
  | Ok stats -> stats.io
  | Error e -> failwith (Printf.sprintf "invalid MP game at step %d: %s" e.step e.reason)
