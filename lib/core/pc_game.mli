module Cdag := Dmc_cdag.Cdag

(** The red-blue pebble game with partial computations (after "The
    Impact of Partial Computations on the Red-Blue Pebble Game",
    arXiv 2506.10854).

    The classic compute rule R3 demands every predecessor red {e
    simultaneously}, so a vertex of in-degree [d] needs [d + 1] red
    pebbles at its firing instant.  For associative accumulations
    (sums, max-reductions, dot products) that is too strict: a partial
    result can absorb one operand at a time.  This game splits R3 into
    three rules: [Begin] allocates an accumulator red pebble, [Absorb]
    folds one {e complete} red predecessor into it (each predecessor
    exactly once), and [Finish] seals it once every predecessor has
    been absorbed — so two red pebbles suffice for any in-degree.
    Only complete values (loaded inputs or finished vertices) may be
    stored or absorbed; deleting an in-progress accumulator discards
    its partial sums; re-beginning a finished vertex is forbidden
    (strict no-recompute, as in {!Rbw_game}).

    Completion follows the white-pebble convention: a blue pebble on
    every output and every input loaded at least once, keeping
    {!Bounds.io_floor} a sound lower bound even though the S-partition
    machinery of the classic game does not transfer. *)

type move =
  | Load of Cdag.vertex  (** blue -> red; the loaded copy is complete *)
  | Store of Cdag.vertex  (** red -> blue; complete values only *)
  | Delete of Cdag.vertex
      (** remove a red pebble; an unfinished accumulator loses its
          partial sums *)
  | Begin of Cdag.vertex  (** allocate an accumulator red pebble *)
  | Absorb of { v : Cdag.vertex; pred : Cdag.vertex }
      (** fold the complete red operand [pred] into [v]'s accumulator;
          each predecessor exactly once *)
  | Finish of Cdag.vertex
      (** seal the accumulator once all predecessors are absorbed *)

val pp_move : Format.formatter -> move -> unit

type stats = {
  loads : int;
  stores : int;
  io : int;  (** [loads + stores] *)
  finishes : int;  (** completed vertices — the R3 analogue *)
  absorbs : int;
  max_red : int;
}

type error = {
  step : int;
      (** 0-based index of the offending move, or the move-list length
          for a completion failure *)
  reason : string;
}

val run : Cdag.t -> s:int -> move list -> (stats, error) result
(** Play a complete game.  Raises [Invalid_argument] when [s <= 0]. *)

val validate : Cdag.t -> s:int -> move list -> error option
(** [None] when {!run} succeeds. *)

val io_of : Cdag.t -> s:int -> move list -> int
(** I/O count of a valid game; raises [Failure] on an invalid one. *)
