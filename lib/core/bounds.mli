module Cdag := Dmc_cdag.Cdag

(** One-stop lower/upper-bound analysis of a concrete CDAG, combining
    every engine in this library.  This is what the CLI and the
    validation experiments call. *)

type report = {
  s : int;
  n_vertices : int;
  n_edges : int;
  io_floor : int;
      (** the tagging floor: every input must be loaded once (white
          pebbles) and every non-input output stored once *)
  wavefront_lb : int;   (** {!Wavefront.lower_bound} *)
  partition_lb : int option;
      (** {!Spartition.lower_bound_exact} when the graph is small
          enough for the exhaustive search, else [None] *)
  partition_u_lb : int option;
      (** {!Spartition.lower_bound_u} when feasible *)
  span_lb : int option;
      (** {!Span.lower_bound} (Savage's S-span) when the graph is small
          enough for the exhaustive span search *)
  best_lb : int;        (** max of the above *)
  belady_ub : int;      (** measured I/O of the Belady schedule *)
  lru_ub : int;         (** measured I/O of the LRU schedule *)
  trivial_ub : int;     (** {!Strategy.trivial_io} *)
  optimal_io : int option;
      (** exhaustive optimum when the graph has at most
          [optimal_limit] vertices *)
}

val io_floor : Cdag.t -> int

val analyze :
  ?exact_partition_limit:int ->
  ?optimal_limit:int ->
  Cdag.t ->
  s:int ->
  report
(** Run every applicable engine.  [exact_partition_limit] (default 9)
    caps the compute-vertex count for the exhaustive partition search;
    [optimal_limit] (default 0, i.e. disabled) caps the vertex count
    for the exhaustive optimal game. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Dmc_util.Json.t
(** The report as JSON, for the CLI's [--json] output. *)

(** {1 Result-typed engines and governed analysis}

    The raising entry points above stay for small-graph callers; the
    governed layer wraps every engine in a
    {!Dmc_util.Budget.t}-governed, result-typed API and degrades
    gracefully down a fallback ladder instead of failing. *)

type failure = Dmc_util.Budget.failure =
  | Timeout
  | Budget_exhausted
  | Cancelled
  | Too_large of string
  | Invalid_input of string
  | Internal of string
(** Re-export of the shared failure taxonomy so callers of this module
    need not also name [Dmc_util.Budget]. *)

module Engine : sig
  type 'a outcome = ('a, failure) result

  val run : ?budget:Dmc_util.Budget.t -> (unit -> 'a) -> 'a outcome
  (** Run a thunk under the unified failure taxonomy:
      [Budget.Exhausted] becomes its carried failure,
      [Budget.Internal_error] becomes [Internal], {!Optimal.Too_large}
      becomes [Too_large] (as does [Stack_overflow] from a too-deep
      search recursion), and [Invalid_argument]/[Failure] become
      [Invalid_input].  An already-exhausted [budget] short-circuits
      without running the thunk. *)

  val rbw_io :
    ?budget:Dmc_util.Budget.t -> ?max_states:int -> Cdag.t -> s:int ->
    int outcome

  val rb_io :
    ?budget:Dmc_util.Budget.t -> ?max_states:int -> Cdag.t -> s:int ->
    int outcome

  val min_balanced_horizontal :
    ?budget:Dmc_util.Budget.t -> ?slack:int -> Cdag.t -> procs:int ->
    (int * int array) outcome

  val span_lb :
    ?budget:Dmc_util.Budget.t -> ?max_nodes:int -> Cdag.t -> s:int ->
    int outcome

  val partition_lb :
    ?budget:Dmc_util.Budget.t -> ?max_nodes:int -> Cdag.t -> s:int ->
    int outcome

  val partition_u_lb :
    ?budget:Dmc_util.Budget.t -> Cdag.t -> s:int -> int outcome

  val wavefront_lb :
    ?budget:Dmc_util.Budget.t -> ?samples:int -> ?rng:Dmc_util.Rng.t ->
    Cdag.t -> s:int -> int outcome

  val strategy_io :
    ?budget:Dmc_util.Budget.t -> ?policy:Strategy.policy ->
    ?order:Cdag.vertex array -> Cdag.t -> s:int -> int outcome
end

type kind = Lower | Upper | Exact
(** What a governed row's value means: a sound lower bound, a measured
    (achievable) upper bound, or the exhaustive optimum.  An [Exact]
    row that fell back down its ladder carries a lower bound instead —
    its [rung] says so. *)

type row = {
  engine : string;  (** ["wavefront"], ["partition-h"], ["belady"], ... *)
  kind : kind;
  value : int option;  (** [None] only when every rung failed *)
  rung : string;
      (** the ladder rung that produced [value]: ["exact"],
          ["sampled"], ["wavefront"], ["floor"], ["trivial"], or ["-"] *)
  attempts : (string * failure) list;
      (** the rungs that failed before [rung], in attempt order *)
  elapsed : float;  (** wall-clock seconds spent on the whole ladder *)
}

type governed = {
  gov_s : int;
  gov_n_vertices : int;
  gov_n_edges : int;
  gov_rows : row list;
  gov_best_lb : int;
      (** max over [Lower] and [Exact] rows — every rung of those
          ladders yields a sound lower bound *)
  gov_best_ub : int option;
      (** min over [Upper] rows and non-degraded [Exact] rows; [None]
          when no upper-bound engine completed (e.g. [s] too small) *)
}

val kind_to_string : kind -> string
(** ["lb"], ["ub"], ["exact"]. *)

val row_status : row -> string
(** ["ok"] when the first rung won, else
    ["timeout(fallback=sampled)"]-style: the first failure's class and
    the rung that finally produced the value. *)

val analyze_governed :
  ?timeout:float -> ?node_budget:int -> ?samples:int -> Cdag.t -> s:int ->
  governed
(** Run every engine under its own fresh budget ([timeout] seconds
    and/or [node_budget] ticks {e per ladder rung}) and degrade down a
    fallback ladder instead of failing: exact engines fall back to the
    wavefront row's achieved value and then to {!io_floor}; the
    wavefront row itself falls back from the exact sweep to the
    anytime sampler ([samples] draws, default 64); the eviction-policy
    upper bounds fall back to the trivial schedule.  Never raises on
    resource exhaustion — every failure is recorded in the row. *)

(** {2 Per-engine rows}

    The worker pool ({!Dmc_runtime.Pool}) runs each governed engine in
    its own child process, so the ladder of a single engine must be
    computable in isolation and its row must cross a process boundary
    as JSON. *)

val governed_engines : (string * kind) list
(** Every engine {!analyze_governed} runs, in output order:
    ["floor"], ["wavefront"], ["partition-h"], ["partition-u"],
    ["span"], ["optimal"], ["belady"], ["lru"]. *)

val governed_row :
  ?timeout:float -> ?node_budget:int -> ?samples:int -> ?wavefront:int ->
  Cdag.t -> s:int -> string -> row
(** One engine's full fallback ladder.  [wavefront] is the
    already-computed wavefront bound used as the middle rung of the
    other lower-bound ladders; when omitted it is derived on demand
    (value-deterministic: the sampler seed is fixed).  Raises
    [Invalid_argument] on an engine name not in {!governed_engines}. *)

val degraded_row :
  Cdag.t -> s:int -> engine:string -> kind:kind -> failure:failure ->
  elapsed:float -> row
(** The supervisor-side terminal rung for an engine whose whole worker
    was lost (crashed, hard-killed, or protocol-broken): lower/exact
    engines degrade to the O(n) I/O floor, upper engines to the
    trivial schedule when [s] admits one.  [failure] is recorded as a
    failed ["worker"] rung so the status column shows what forced the
    fallback. *)

val assemble_governed : Cdag.t -> s:int -> row list -> governed
(** Recompute the best-bound summary from independently produced rows
    (same soundness rules as {!analyze_governed}: lower and exact rows
    feed [gov_best_lb]; upper rows and non-degraded exact rows feed
    [gov_best_ub]). *)

val row_to_json : row -> Dmc_util.Json.t
val row_of_json : Dmc_util.Json.t -> row option
(** Inverses, up to the derived [status] field; the worker protocol
    ships rows as [row_to_json] frames. *)

val pp_governed : Format.formatter -> governed -> unit
(** Status table: one line per engine with value, status, winning rung
    and elapsed time, then the best-bound summary. *)

val governed_to_json : governed -> Dmc_util.Json.t

val certify_wavefront : ?samples:int -> Cdag.t -> s:int -> bool
(** Re-derive the wavefront component of {!analyze}'s bound with a
    Menger witness and verify it from first principles
    ({!Wavefront.verify_witness}): find the maximizing vertex of the
    input-stripped graph (exactly below {!Wavefront.exact_threshold}
    vertices, else over [samples] draws), extract its disjoint-path
    witness, and check both the paths and that their count equals the
    min-cut value.  [true] means the certificate checks out. *)
