module Implicit := Dmc_cdag.Implicit

(** Streaming wavefront bounds over implicit graphs.

    A frozen graph too big to hold is still easy to {e window}: the
    id range [0 .. n) is cut into consecutive windows, each window is
    materialized on demand ({!Implicit.window}, Theorem-2 tagging),
    bounded with the standard wavefront engine, and the per-window
    bounds are summed.  By Theorem 2 the sum is a valid I/O lower
    bound for the whole CDAG, and memory stays proportional to one
    window.  This is the mid-scale tool — graphs of 10^6..10^8
    vertices that are enumerable but not materializable; for
    billion-node instances use {!Symbolic_bounds}, which never
    enumerates at all. *)

type window_bound = { lo : int; hi : int; bound : int }

type result = {
  total : int;  (** the Theorem-2 sum — a valid whole-graph bound *)
  n_windows : int;
  degraded : int;
      (** windows that fell back to the trivial bound 0 after their
          pool worker failed; always 0 in the sequential path *)
  windows : window_bound array;
}

val default_window : int
(** 4096 vertices per window. *)

val wavefront_sum :
  ?samples:int -> ?window:int -> Implicit.t -> s:int -> result
(** Sequential sweep.  [samples] is forwarded to
    {!Wavefront.lower_bound} (windows at or below its exact threshold
    are solved exactly).  Deterministic: the engine seeds its own rng
    per window. *)

val wavefront_sum_pooled :
  ?samples:int ->
  ?window:int ->
  ?timeout:float ->
  ?retries:int ->
  jobs:int ->
  Implicit.t ->
  s:int ->
  result
(** The same sweep fanned out over {!Dmc_runtime.Pool} fork workers
    ([jobs <= 1] degrades to {!wavefront_sum}).  Results commit in
    window order, so totals and rows are byte-identical across [jobs]
    widths; a window whose worker fails after retries contributes the
    sound trivial bound 0 and is counted in [degraded]. *)
