module Budget := Dmc_util.Budget
module Cdag := Dmc_cdag.Cdag
module Bitset := Dmc_util.Bitset

(** S-partitions of CDAGs under the RBW model (Definition 5) and the
    Hong–Kung lower-bound machinery built on them (Theorem 1, Lemma 1,
    Corollary 1).

    An S-partition splits the compute vertices [V - I] into disjoint
    subsets such that
    - P2: no two subsets have edges in both directions between them;
    - P3: each subset's input set [In(V_i)] (outside vertices with a
      successor inside) has at most [S] vertices;
    - P4: each subset's output set [Out(V_i)] (inside vertices that are
      tagged outputs or have a successor outside) has at most [S]
      vertices.

    Partitions are represented as a color array indexed by vertex:
    inputs carry [-1], compute vertices a color in [0 .. h-1]. *)

val in_set : Cdag.t -> Bitset.t -> Bitset.t
(** [In(V_i)] of Definition 5. *)

val out_set : Cdag.t -> Bitset.t -> Bitset.t
(** [Out(V_i)] of Definition 5. *)

val check : Cdag.t -> s:int -> color:int array -> (int, string) result
(** Validate a color array as an [s]-partition; [Ok h] returns the
    number of non-empty subsets.  P2 is checked exactly as Definition 5
    states it (no two-subset circuit). *)

val of_game : Cdag.t -> s:int -> Rbw_game.move list -> int array
(** The Theorem-1 construction: cut the (valid) game into consecutive
    phases of at most [s] I/O moves each — a new phase starts on the
    I/O move that would exceed the quota — and color each compute by
    its phase.  Colors are compacted to drop empty phases.  The result
    is a [2s]-partition whose block count [h] satisfies
    [s * h >= io >= s * (h - 1)].  Raises [Failure] when the game is
    not valid. *)

val min_h_exact : ?budget:Budget.t -> ?max_nodes:int -> Cdag.t -> s:int -> int
(** [H(S)]: the minimal number of subsets of any valid [s]-partition,
    by exhaustive branch-and-bound over set partitions of the compute
    vertices.  Only practical for small graphs; [max_nodes] (default
    20,000,000 search nodes) guards the search and raises
    {!Optimal.Too_large} beyond it. *)

val max_subset_exact : ?budget:Budget.t -> Cdag.t -> s:int -> int
(** An upper bound on [U(S)] — the largest subset usable in any valid
    [s]-partition — computed as the largest subset [W] of compute
    vertices with [|In(W)| <= s] and [|Out(W)| <= s] (the P2 constraint
    is dropped, which can only enlarge the result, keeping Corollary 1
    sound).  Exhaustive over subsets; requires at most 22 compute
    vertices ({!Optimal.Too_large} otherwise). *)

val lemma1_bound : s:int -> h:int -> int
(** Lemma 1: [Q >= S * (H(2S) - 1)]. *)

val corollary1_bound : s:int -> n_compute:int -> u:int -> int
(** Corollary 1: [Q >= S * (|V'| / U(2S) - 1)], rounded up; never
    negative. *)

val lower_bound_exact : ?budget:Budget.t -> ?max_nodes:int -> Cdag.t -> s:int -> int
(** Lemma 1 instantiated with the exhaustive [H(2S)]:
    [s * (min_h_exact ~s:(2s) - 1)], clamped at 0. *)

val lower_bound_u : ?budget:Budget.t -> Cdag.t -> s:int -> int
(** Corollary 1 instantiated with the exhaustive [U(2S)]. *)
