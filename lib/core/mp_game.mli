module Cdag := Dmc_cdag.Cdag

(** The multi-processor red-blue pebble game (after "Red-Blue Pebbling
    with Multiple Processors: Time, Communication and Memory
    Trade-offs", arXiv 2409.03898).

    [p] processors each own a private fast memory of [S] red pebbles;
    one unbounded slow memory holds the blue pebbles.  A value moves
    between processors only through slow memory: the producer stores
    it (red -> blue) and the consumer loads it (blue -> red), so every
    communication is witnessed by I/O moves and the total I/O count is
    the communication volume of the execution.  Recomputation is
    forbidden under the strict rules: each vertex fires exactly once,
    on exactly one processor.

    The engine replays a proposed move sequence, rejecting the first
    illegal move, and checks the completion condition: a blue pebble
    on every output and every input loaded at least once by some
    processor (the white-pebble convention of {!Rbw_game}, which keeps
    {!Bounds.io_floor} a sound lower bound).  Beyond the counters it
    computes a list-scheduling makespan under the cost model
    [compute = 1, I/O move = g_cost], where a load additionally waits
    until the value it reads has become blue — the time axis of the
    paper's time/communication trade-off. *)

type move =
  | Load of { proc : int; v : Cdag.vertex }
      (** blue -> a red pebble of [proc] *)
  | Store of { proc : int; v : Cdag.vertex }
      (** a red pebble of [proc] -> blue *)
  | Compute of { proc : int; v : Cdag.vertex }
      (** all predecessors red on [proc] -> red on [proc]; at most once
          per vertex across all processors *)
  | Delete of { proc : int; v : Cdag.vertex }
      (** remove one of [proc]'s red pebbles *)

val pp_move : Format.formatter -> move -> unit

type stats = {
  loads : int;
  stores : int;
  io : int;  (** [loads + stores] — the communication volume *)
  computes : int;
  max_red : int;  (** peak red pebbles in use on any single processor *)
  per_proc_io : int array;
  per_proc_computes : int array;
  makespan : int;
      (** completion time under [compute = 1, I/O = g_cost] with loads
          waiting for their value's store to complete *)
}

type error = {
  step : int;
      (** 0-based index of the offending move, or the move-list length
          for a completion failure *)
  reason : string;
}

val run :
  ?g_cost:int -> Cdag.t -> p:int -> s:int -> move list -> (stats, error) result
(** Play a complete game.  The initial state has a blue pebble on each
    tagged input and every fast memory empty.  [g_cost] (default 1) is
    the time per I/O move.  Raises [Invalid_argument] when [p <= 0],
    [s <= 0] or [g_cost < 0]. *)

val validate : ?g_cost:int -> Cdag.t -> p:int -> s:int -> move list -> error option
(** [None] when {!run} succeeds. *)

val io_of : ?g_cost:int -> Cdag.t -> p:int -> s:int -> move list -> int
(** I/O count of a valid game; raises [Failure] on an invalid one. *)
