(** A governed bound computation as a pure, serializable job.

    [dmc bounds --jobs N] ships one of these per engine to a pool
    worker: the CDAG travels in its text serialization, the engine by
    name, and the budget by value — the closure is reconstructed on
    the other side with {!Bounds.governed_row} (or {!Mp_bounds.row} for the
    multi-processor engines), so a job is fully
    described by data and can be logged, checkpointed, or replayed
    verbatim. *)

type t = {
  engine : string;
      (** a name from {!Bounds.governed_engines} or
          {!Mp_bounds.engines} *)
  graph : string;  (** {!Dmc_cdag.Serialize.to_string} text *)
  s : int;
  p : int;  (** processor count; only the mp engines read it *)
  timeout : float option;  (** cooperative per-rung deadline *)
  node_budget : int option;
  samples : int;
}

val make :
  ?timeout:float -> ?node_budget:int -> ?samples:int -> ?p:int ->
  Dmc_cdag.Cdag.t -> s:int -> engine:string -> t
(** [samples] defaults to 64, matching {!Bounds.analyze_governed};
    [p] defaults to 1 (single-processor jobs never mention it, and
    checkpoints written before the multi-processor engines existed
    deserialize with the same default). *)

val to_json : t -> Dmc_util.Json.t

val of_json : Dmc_util.Json.t -> (t, string) result

val run : t -> (Dmc_util.Json.t, Dmc_util.Budget.failure) result
(** Execute the job's full fallback ladder and return the row as a
    {!Bounds.row_to_json} payload.  [Error] only for jobs broken
    before any engine runs: an unparseable graph or an unknown engine
    name is [Invalid_input] — resource exhaustion inside the ladder
    degrades within the row instead. *)
