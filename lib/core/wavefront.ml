module Bitset = Dmc_util.Bitset
module Rng = Dmc_util.Rng
module Cdag = Dmc_cdag.Cdag
module Reach = Dmc_cdag.Reach
module Subgraph = Dmc_cdag.Subgraph
module Vertex_cut = Dmc_flow.Vertex_cut

let c_mincut = Dmc_obs.Counter.make "wavefront.mincut_calls"
let h_cut_size = Dmc_obs.Histogram.make "wavefront.cut_size"

let min_wavefront_cut ?budget g x =
  Dmc_obs.Counter.incr c_mincut;
  let desc = Reach.descendants g x in
  if Bitset.is_empty desc then begin
    Dmc_obs.Histogram.observe h_cut_size 1;
    (1, [ x ])
  end
  else begin
    let anc = Reach.ancestors g x in
    let from_set = x :: Bitset.elements anc in
    let to_set = Bitset.elements desc in
    let r =
      Vertex_cut.min_vertex_cut ?budget g ~from_set ~to_set ~uncuttable:to_set ()
    in
    Dmc_obs.Histogram.observe h_cut_size r.size;
    (r.size, r.cut)
  end

let min_wavefront ?budget g x = fst (min_wavefront_cut ?budget g x)

let wmax_exact ?budget g =
  Dmc_obs.Span.with_
    ~attrs:[ ("n", string_of_int (Cdag.n_vertices g)) ]
    "wavefront.wmax_exact"
    (fun () ->
      Cdag.fold_vertices g (fun acc x -> max acc (min_wavefront ?budget g x)) 0)

let wmax_exact_par ?domains g =
  let n = Cdag.n_vertices g in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  if domains <= 1 || n < 64 then wmax_exact g
  else begin
    let chunks = min domains n in
    let worker c () =
      let best = ref 0 in
      let lo = c * n / chunks and hi = (c + 1) * n / chunks in
      for x = lo to hi - 1 do
        best := max !best (min_wavefront g x)
      done;
      !best
    in
    let handles = List.init chunks (fun c -> Domain.spawn (worker c)) in
    List.fold_left (fun acc h -> max acc (Domain.join h)) 0 handles
  end

let wmax_sampled ?budget rng g ~samples =
  let n = Cdag.n_vertices g in
  if n = 0 then 0
  else
    Dmc_obs.Span.with_
      ~attrs:[ ("n", string_of_int n); ("samples", string_of_int samples) ]
      "wavefront.wmax_sampled"
      (fun () ->
        let best = ref 0 in
        for _ = 1 to samples do
          let x = Rng.int rng n in
          best := max !best (min_wavefront ?budget g x)
        done;
        !best)

(* Anytime variant for the fallback ladder: sample until the budget
   runs out and keep the best bound found so far.  Sound because
   Lemma 2 holds for every vertex, so a partial sweep only weakens the
   bound, never invalidates it. *)
let wmax_sampled_anytime ?budget rng g ~samples =
  let n = Cdag.n_vertices g in
  if n = 0 then 0
  else
    Dmc_obs.Span.with_
      ~attrs:[ ("n", string_of_int n); ("samples", string_of_int samples) ]
      "wavefront.wmax_sampled_anytime"
      (fun () ->
        let best = ref 0 in
        let completed = ref 0 in
        (try
           for _ = 1 to samples do
             let x = Rng.int rng n in
             best := max !best (min_wavefront ?budget g x);
             incr completed
           done
         with Dmc_util.Budget.Exhausted _ -> ());
        Dmc_obs.Span.note "completed" (string_of_int !completed);
        !best)

let lemma2_bound ~wavefront ~s = max 0 (2 * (wavefront - s))

type witness = {
  x : Cdag.vertex;
  paths : Cdag.vertex list list;
}

let witness g x =
  let desc = Reach.descendants g x in
  if Bitset.is_empty desc then { x; paths = [] }
  else begin
    let anc = Reach.ancestors g x in
    let from_set = x :: Bitset.elements anc in
    let to_set = Bitset.elements desc in
    let paths =
      Vertex_cut.path_witness g ~from_set ~to_set ~uncuttable:to_set ()
    in
    { x; paths }
  end

let verify_witness g w =
  let n = Cdag.n_vertices g in
  let desc = Reach.descendants g w.x in
  let anc = Reach.ancestors g w.x in
  let seen_outside = Bitset.create n in
  let path_ok path =
    match path with
    | [] -> false
    | first :: _ ->
        (* starts at x or one of its ancestors *)
        (first = w.x || Bitset.mem anc first)
        (* consecutive vertices are edges *)
        && (let rec edges_ok = function
              | a :: (b :: _ as rest) -> Cdag.has_edge g a b && edges_ok rest
              | [ _ ] | [] -> true
            in
            edges_ok path)
        (* ends inside Desc(x) *)
        && Bitset.mem desc (List.nth path (List.length path - 1))
        (* vertices outside Desc(x) belong to this path alone *)
        && List.for_all
             (fun v ->
               Bitset.mem desc v
               ||
               if Bitset.mem seen_outside v then false
               else begin
                 Bitset.add seen_outside v;
                 true
               end)
             path
  in
  List.for_all path_ok w.paths

let exact_threshold = 512

(* Two sound variants: drop only the inputs (outputs keep their
   wavefront paths), or drop both and bank |dO| as forced stores.
   Take the better.  [wmax_of] computes the max min-wavefront of a
   stripped graph; parameterizing it lets the fallback ladder swap the
   exact sweep for the anytime sampler without duplicating the
   stripping logic. *)
let lower_bound_via wmax_of g ~s =
  let wmax stripped =
    if Cdag.n_vertices stripped = 0 then 0 else wmax_of stripped
  in
  let part_i, di = Subgraph.drop_inputs g in
  let via_inputs = lemma2_bound ~wavefront:(wmax part_i.Subgraph.graph) ~s + di in
  let part_io, di', d_o = Subgraph.drop_io g in
  let via_both =
    lemma2_bound ~wavefront:(wmax part_io.Subgraph.graph) ~s + di' + d_o
  in
  max via_inputs via_both

let lower_bound ?budget ?(samples = 64) ?rng g ~s =
  let wmax stripped =
    if Cdag.n_vertices stripped <= exact_threshold then
      wmax_exact ?budget stripped
    else
      let rng = match rng with Some r -> r | None -> Rng.create 0x5eed in
      wmax_sampled ?budget rng stripped ~samples
  in
  lower_bound_via wmax g ~s
