module J = Dmc_util.Json

type t = {
  engine : string;
  graph : string;
  s : int;
  p : int;
  timeout : float option;
  node_budget : int option;
  samples : int;
}

let make ?timeout ?node_budget ?(samples = 64) ?(p = 1) g ~s ~engine =
  {
    engine;
    graph = Dmc_cdag.Serialize.to_string g;
    s;
    p;
    timeout;
    node_budget;
    samples;
  }

let to_json job =
  J.Obj
    [
      ("kind", J.String "dmc-engine-job");
      ("engine", J.String job.engine);
      ("graph", J.String job.graph);
      ("s", J.Int job.s);
      ("p", J.Int job.p);
      ("timeout", J.opt (fun t -> J.Float t) job.timeout);
      ("node_budget", J.opt (fun n -> J.Int n) job.node_budget);
      ("samples", J.Int job.samples);
    ]

let of_json json =
  let str field = Option.bind (J.mem json field) J.as_string in
  let int field = Option.bind (J.mem json field) J.as_int in
  match (str "kind", str "engine", str "graph", int "s", int "samples") with
  | Some "dmc-engine-job", Some engine, Some graph, Some s, Some samples ->
      let timeout =
        match J.mem json "timeout" with
        | Some (J.Null) | None -> None
        | Some j -> J.as_float j
      in
      let node_budget =
        match J.mem json "node_budget" with
        | Some J.Null | None -> None
        | Some j -> J.as_int j
      in
      (* Jobs from older checkpoints predate the multi-processor
         engines and are single-processor by construction. *)
      let p = Option.value ~default:1 (int "p") in
      Ok { engine; graph; s; p; timeout; node_budget; samples }
  | _ -> Error "not a dmc-engine-job object"

let run job =
  let governed = List.mem_assoc job.engine Bounds.governed_engines in
  if not (governed || Mp_bounds.is_engine job.engine) then
    Error (Dmc_util.Budget.Invalid_input ("unknown engine: " ^ job.engine))
  else if job.p < 1 then
    Error (Dmc_util.Budget.Invalid_input "p must be positive")
  else
    match Dmc_cdag.Serialize.of_string job.graph with
    | Error msg -> Error (Dmc_util.Budget.Invalid_input ("bad graph: " ^ msg))
    | Ok g ->
        let row =
          if governed then
            Bounds.governed_row ?timeout:job.timeout
              ?node_budget:job.node_budget ~samples:job.samples g ~s:job.s
              job.engine
          else
            Mp_bounds.row ?timeout:job.timeout ?node_budget:job.node_budget
              ~samples:job.samples g ~p:job.p ~s:job.s job.engine
        in
        Ok (Bounds.row_to_json row)
