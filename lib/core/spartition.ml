module Bitset = Dmc_util.Bitset
module Budget = Dmc_util.Budget
module Cdag = Dmc_cdag.Cdag

let in_set g vi =
  let n = Cdag.n_vertices g in
  let out = Bitset.create n in
  Bitset.iter
    (fun v ->
      Cdag.iter_pred g v (fun u -> if not (Bitset.mem vi u) then Bitset.add out u))
    vi;
  out

let out_set g vi =
  let n = Cdag.n_vertices g in
  let out = Bitset.create n in
  Bitset.iter
    (fun v ->
      if Cdag.is_output g v then Bitset.add out v
      else
        Cdag.iter_succ g v (fun w ->
            if not (Bitset.mem vi w) then Bitset.add out v))
    vi;
  out

let blocks_of_color g color =
  let n = Cdag.n_vertices g in
  let h = 1 + Array.fold_left max (-1) color in
  let blocks = Array.init (max h 0) (fun _ -> Bitset.create n) in
  Array.iteri (fun v c -> if c >= 0 then Bitset.add blocks.(c) v) color;
  blocks

let check g ~s ~color =
  let n = Cdag.n_vertices g in
  if Array.length color <> n then Error "color array has wrong length"
  else begin
    let bad = ref None in
    Array.iteri
      (fun v c ->
        if !bad = None then
          if Cdag.is_input g v then begin
            if c <> -1 then bad := Some (Printf.sprintf "input %d is colored" v)
          end
          else if c < 0 then
            bad := Some (Printf.sprintf "compute vertex %d is uncolored" v))
      color;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let blocks = blocks_of_color g color in
        let h = Array.length blocks in
        let nonempty = Array.to_list blocks |> List.filter (fun b -> not (Bitset.is_empty b)) in
        (* P2: no two-subset circuit. *)
        let adj = Array.make_matrix h h false in
        Cdag.iter_edges g (fun u v ->
            let cu = color.(u) and cv = color.(v) in
            if cu >= 0 && cv >= 0 && cu <> cv then adj.(cu).(cv) <- true);
        let circuit = ref None in
        for i = 0 to h - 1 do
          for j = i + 1 to h - 1 do
            if adj.(i).(j) && adj.(j).(i) && !circuit = None then
              circuit := Some (i, j)
          done
        done;
        (match !circuit with
        | Some (i, j) ->
            Error (Printf.sprintf "circuit between subsets %d and %d" i j)
        | None ->
            let violation =
              List.find_map
                (fun b ->
                  if Bitset.cardinal (in_set g b) > s then
                    Some "subset with |In| > S"
                  else if Bitset.cardinal (out_set g b) > s then
                    Some "subset with |Out| > S"
                  else None)
                nonempty
            in
            (match violation with
            | Some msg -> Error msg
            | None -> Ok (List.length nonempty)))
  end

let of_game g ~s moves =
  (match Rbw_game.validate g ~s moves with
  | Some e -> failwith (Printf.sprintf "Spartition.of_game: invalid game at step %d: %s" e.step e.reason)
  | None -> ());
  let n = Cdag.n_vertices g in
  let color = Array.make n (-1) in
  let phase = ref 0 and io_in_phase = ref 0 in
  List.iter
    (fun (m : Rbw_game.move) ->
      match m with
      | Rb_game.Load _ | Rb_game.Store _ ->
          if !io_in_phase = s then begin
            incr phase;
            io_in_phase := 0
          end;
          incr io_in_phase
      | Rb_game.Compute v -> color.(v) <- !phase
      | Rb_game.Delete _ -> ())
    moves;
  (* Compact colors so phases without computes disappear. *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun c ->
      if c < 0 then -1
      else begin
        match Hashtbl.find_opt remap c with
        | Some c' -> c'
        | None ->
            let c' = !next in
            incr next;
            Hashtbl.replace remap c c';
            c'
      end)
    color

let compute_vertices g =
  Cdag.fold_vertices g
    (fun acc v -> if Cdag.is_input g v then acc else v :: acc)
    []
  |> List.rev |> Array.of_list

let c_nodes = Dmc_obs.Counter.make "spartition.nodes"
let c_masks = Dmc_obs.Counter.make "spartition.masks"
let h_block_count = Dmc_obs.Histogram.make "spartition.block_count"

let min_h_exact ?budget ?(max_nodes = 20_000_000) g ~s =
  let vs = compute_vertices g in
  let n' = Array.length vs in
  if n' = 0 then 0
  else
    Dmc_obs.Span.with_
      ~attrs:[ ("s", string_of_int s); ("n_compute", string_of_int n') ]
      "spartition.min_h_exact"
    @@ fun () ->
    begin
    let n = Cdag.n_vertices g in
    let color = Array.make n (-1) in
    let best = ref n' in
    let nodes = ref 0 in
    (* Assign vertices one at a time to an existing block or a fresh
       one (canonical set-partition enumeration), validating complete
       assignments. *)
    let rec assign i used =
      (match budget with None -> () | Some b -> Budget.tick b);
      incr nodes;
      Dmc_obs.Counter.incr c_nodes;
      if !nodes > max_nodes then
        raise (Optimal.Too_large "Spartition.min_h_exact: node budget exhausted");
      if used >= !best then ()
      else if i = n' then begin
        (* A validity check walks the whole graph, so account for it
           proportionally — one tick per leaf would let the deadline
           overshoot by hundreds of O(n+e) checks. *)
        (match budget with None -> () | Some b -> Budget.tick_n b (1 + (n / 8)));
        match check g ~s ~color with
        | Ok h ->
            Dmc_obs.Histogram.observe h_block_count h;
            if h < !best then best := h
        | Error _ -> ()
      end
      else
        for c = 0 to min used (n' - 1) do
          color.(vs.(i)) <- c;
          assign (i + 1) (max used (c + 1));
          color.(vs.(i)) <- -1
        done
    in
    assign 0 0;
    !best
  end

let max_subset_exact ?budget g ~s =
  let vs = compute_vertices g in
  let n' = Array.length vs in
  let n = Cdag.n_vertices g in
  if n' > 22 || n > 62 then
    raise (Optimal.Too_large "Spartition.max_subset_exact: graph too large");
  if n' = 0 then 0
  else
    Dmc_obs.Span.with_
      ~attrs:[ ("s", string_of_int s); ("n_compute", string_of_int n') ]
      "spartition.max_subset_exact"
    @@ fun () ->
    begin
    let popcount x =
      let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
      go x 0
    in
    let full_bit = Array.map (fun v -> 1 lsl v) vs in
    let preds =
      Array.map (fun v -> Cdag.fold_pred g v (fun m u -> m lor (1 lsl u)) 0) vs
    in
    let succs =
      Array.map (fun v -> Cdag.fold_succ g v (fun m w -> m lor (1 lsl w)) 0) vs
    in
    let is_out = Array.map (Cdag.is_output g) vs in
    let best = ref 0 in
    for mask = 1 to (1 lsl n') - 1 do
      (match budget with None -> () | Some b -> Budget.tick b);
      Dmc_obs.Counter.incr c_masks;
      let size = popcount mask in
      if size > !best then begin
        let w_full = ref 0 and preds_union = ref 0 in
        for i = 0 to n' - 1 do
          if mask land (1 lsl i) <> 0 then begin
            w_full := !w_full lor full_bit.(i);
            preds_union := !preds_union lor preds.(i)
          end
        done;
        if popcount (!preds_union land lnot !w_full) <= s then begin
          let out = ref 0 in
          for i = 0 to n' - 1 do
            if
              mask land (1 lsl i) <> 0
              && (is_out.(i) || succs.(i) land lnot !w_full <> 0)
            then incr out
          done;
          if !out <= s then best := size
        end
      end
    done;
    !best
  end

let lemma1_bound ~s ~h = max 0 (s * (h - 1))

let corollary1_bound ~s ~n_compute ~u =
  if u <= 0 then invalid_arg "Spartition.corollary1_bound: u must be positive";
  let bound =
    ceil (float_of_int s *. ((float_of_int n_compute /. float_of_int u) -. 1.0))
  in
  max 0 (int_of_float bound)

let lower_bound_exact ?budget ?max_nodes g ~s =
  let h = min_h_exact ?budget ?max_nodes g ~s:(2 * s) in
  lemma1_bound ~s ~h

let lower_bound_u ?budget g ~s =
  let u = max_subset_exact ?budget g ~s:(2 * s) in
  if u = 0 then 0
  else corollary1_bound ~s ~n_compute:(Cdag.n_compute g) ~u
