module Budget = Dmc_util.Budget
module Cdag = Dmc_cdag.Cdag

let popcount =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  fun x -> go x 0

let s_span ?budget ?(max_nodes = 2_000_000) g ~s =
  if s <= 0 then invalid_arg "Span.s_span: s must be positive";
  let n = Cdag.n_vertices g in
  if n > 20 then raise (Optimal.Too_large "Span.s_span: more than 20 vertices");
  let preds =
    Array.init n (fun v -> Cdag.fold_pred g v (fun m u -> m lor (1 lsl u)) 0)
  in
  let input_mask =
    List.fold_left (fun m v -> m lor (1 lsl v)) 0 (Cdag.inputs g)
  in
  let cap = min s n in
  let memo = Hashtbl.create 4096 in
  let nodes = ref 0 in
  (* Best number of additional fires from (fired, red).  [fired] marks
     white-pebbled vertices (initial placements included), which can
     never fire again. *)
  let rec best fired red =
    let key = (fired lsl n) lor red in
    match Hashtbl.find_opt memo key with
    | Some x -> x
    | None ->
        (match budget with None -> () | Some b -> Budget.tick b);
        incr nodes;
        if !nodes > max_nodes then
          raise (Optimal.Too_large "Span.s_span: state budget exhausted");
        let full = popcount red >= s in
        let result = ref 0 in
        for v = 0 to n - 1 do
          let bit = 1 lsl v in
          if
            fired land bit = 0
            && input_mask land bit = 0
            && preds.(v) land lnot red = 0
          then
            if not full then
              result := max !result (1 + best (fired lor bit) (red lor bit))
            else begin
              (* evict any non-operand pebble *)
              let victims = red land lnot preds.(v) in
              for r = 0 to n - 1 do
                if victims land (1 lsl r) <> 0 then
                  result :=
                    max !result
                      (1 + best (fired lor bit) ((red land lnot (1 lsl r)) lor bit))
              done
            end
        done;
        Hashtbl.replace memo key !result;
        !result
  in
  (* Enumerate starting placements of at most [cap] pebbles.  Fewer can
     help: an initial pebble marks its vertex as already evaluated, so
     saturating the compute vertices would leave nothing to fire. *)
  let best_span = ref 0 in
  let rec choose from chosen count =
    if from = n || count = cap then best_span := max !best_span (best chosen chosen)
    else begin
      choose (from + 1) chosen count;
      choose (from + 1) (chosen lor (1 lsl from)) (count + 1)
    end
  in
  choose 0 0 0;
  !best_span

let lower_bound ?budget ?max_nodes g ~s =
  let rho = s_span ?budget ?max_nodes g ~s:(2 * s) in
  if rho = 0 then 0
  else begin
    let n' = Cdag.n_compute g in
    let bound =
      ceil (float_of_int s *. ((float_of_int n' /. float_of_int rho) -. 1.0))
    in
    max 0 (int_of_float bound)
  end
