module Bitset = Dmc_util.Bitset
module Cdag = Dmc_cdag.Cdag

type move =
  | Load of Cdag.vertex
  | Store of Cdag.vertex
  | Delete of Cdag.vertex
  | Begin of Cdag.vertex
  | Absorb of { v : Cdag.vertex; pred : Cdag.vertex }
  | Finish of Cdag.vertex

let pp_move ppf = function
  | Load v -> Format.fprintf ppf "load %d" v
  | Store v -> Format.fprintf ppf "store %d" v
  | Delete v -> Format.fprintf ppf "delete %d" v
  | Begin v -> Format.fprintf ppf "begin %d" v
  | Absorb { v; pred } -> Format.fprintf ppf "absorb %d <- %d" v pred
  | Finish v -> Format.fprintf ppf "finish %d" v

type stats = {
  loads : int;
  stores : int;
  io : int;
  finishes : int;
  absorbs : int;
  max_red : int;
}

type error = { step : int; reason : string }

let run g ~s moves =
  if s <= 0 then invalid_arg "Pc_game.run: s must be positive";
  let n = Cdag.n_vertices g in
  let red = Bitset.create n and blue = Bitset.create n in
  List.iter (Bitset.add blue) (Cdag.inputs g);
  (* A red pebble is either a complete value (a loaded input, a loaded
     stored value, or a finished vertex) or an in-progress accumulator
     (begun, some predecessors absorbed).  Only complete values may be
     stored or absorbed by successors. *)
  let begun = Bitset.create n in
  let finished = Bitset.create n in
  let input_read = Bitset.create n in
  let absorbed = Array.make n None in
  let absorbed_count = Array.make n 0 in
  let loads = ref 0 and stores = ref 0 and finishes = ref 0 and absorbs = ref 0 in
  let max_red = ref 0 in
  let exception Fail of error in
  let fail step fmt = Format.kasprintf (fun reason -> raise (Fail { step; reason })) fmt in
  let check_vertex step v =
    if v < 0 || v >= n then fail step "vertex %d out of range" v
  in
  let complete v = Cdag.is_input g v || Bitset.mem finished v in
  let place step v =
    if not (Bitset.mem red v) then begin
      if Bitset.cardinal red >= s then fail step "no free red pebble (S = %d)" s;
      Bitset.add red v;
      if Bitset.cardinal red > !max_red then max_red := Bitset.cardinal red
    end
  in
  try
    List.iteri
      (fun step move ->
        match move with
        | Load v ->
            check_vertex step v;
            if not (Bitset.mem blue v) then fail step "load %d: no blue pebble" v;
            if Bitset.mem begun v && not (Bitset.mem finished v) then
              fail step "load %d: an accumulator for it is in progress" v;
            place step v;
            if Cdag.is_input g v then Bitset.add input_read v;
            incr loads
        | Store v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "store %d: no red pebble" v;
            if not (complete v) then
              fail step "store %d: not finished (partial values cannot be stored)" v;
            Bitset.add blue v;
            incr stores
        | Delete v ->
            check_vertex step v;
            if not (Bitset.mem red v) then fail step "delete %d: no red pebble" v;
            Bitset.remove red v;
            (* Deleting an in-progress accumulator discards its partial
               sums: the vertex may be begun again from scratch. *)
            if Bitset.mem begun v && not (Bitset.mem finished v) then begin
              Bitset.remove begun v;
              absorbed.(v) <- None;
              absorbed_count.(v) <- 0
            end
        | Begin v ->
            check_vertex step v;
            if Cdag.is_input g v then fail step "begin %d: inputs cannot fire" v;
            if Bitset.mem finished v then
              fail step "begin %d: already finished (recomputation forbidden)" v;
            if Bitset.mem begun v then fail step "begin %d: already in progress" v;
            if Bitset.mem red v then
              fail step "begin %d: a complete copy is already red" v;
            place step v;
            Bitset.add begun v;
            absorbed.(v) <- Some (Bitset.create n);
            absorbed_count.(v) <- 0
        | Absorb { v; pred } ->
            check_vertex step v;
            check_vertex step pred;
            if not (Bitset.mem begun v) || Bitset.mem finished v then
              fail step "absorb %d <- %d: no accumulator in progress" v pred;
            if not (Bitset.mem red v) then
              fail step "absorb %d <- %d: accumulator not red" v pred;
            if not (Bitset.mem red pred) then
              fail step "absorb %d <- %d: operand not red" v pred;
            if not (complete pred) then
              fail step "absorb %d <- %d: operand not finished" v pred;
            if not (Cdag.fold_pred g v (fun acc u -> acc || u = pred) false) then
              fail step "absorb %d <- %d: not a predecessor" v pred;
            let set = match absorbed.(v) with Some b -> b | None -> assert false in
            if Bitset.mem set pred then
              fail step "absorb %d <- %d: already absorbed" v pred;
            Bitset.add set pred;
            absorbed_count.(v) <- absorbed_count.(v) + 1;
            incr absorbs
        | Finish v ->
            check_vertex step v;
            if not (Bitset.mem begun v) || Bitset.mem finished v then
              fail step "finish %d: no accumulator in progress" v;
            if not (Bitset.mem red v) then fail step "finish %d: accumulator not red" v;
            if absorbed_count.(v) < Cdag.in_degree g v then
              fail step "finish %d: only %d of %d predecessors absorbed" v
                absorbed_count.(v) (Cdag.in_degree g v);
            Bitset.add finished v;
            absorbed.(v) <- None;
            incr finishes)
      moves;
    let finish = List.length moves in
    List.iter
      (fun v ->
        if not (Bitset.mem blue v) then
          fail finish "output %d has no blue pebble at the end" v)
      (Cdag.outputs g);
    List.iter
      (fun v ->
        if not (Bitset.mem input_read v) then
          fail finish "input %d was never loaded" v)
      (Cdag.inputs g);
    Ok
      {
        loads = !loads;
        stores = !stores;
        io = !loads + !stores;
        finishes = !finishes;
        absorbs = !absorbs;
        max_red = !max_red;
      }
  with Fail e -> Error e

let validate g ~s moves =
  match run g ~s moves with Ok _ -> None | Error e -> Some e

let io_of g ~s moves =
  match run g ~s moves with
  | Ok stats -> stats.io
  | Error e -> failwith (Printf.sprintf "invalid PC game at step %d: %s" e.step e.reason)
