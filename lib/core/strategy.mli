module Budget := Dmc_util.Budget
module Cdag := Dmc_cdag.Cdag
module Hierarchy := Dmc_machine.Hierarchy

(** Schedulers that emit {e valid} RBW / P-RBW games, giving measured
    upper bounds on I/O.

    The lower-bound engines are only half of the paper's story: to show
    a bound is informative one needs an execution whose cost approaches
    it.  Each function here produces a move list that the corresponding
    game engine accepts (the tests replay every schedule through
    {!Rbw_game.run} / {!Prbw_game.run}), so the reported I/O counts are
    certified upper bounds on the optimum. *)

val default_order : Cdag.t -> Cdag.vertex array
(** The deterministic topological order of the non-input vertices
    (smallest-id-first Kahn), the default compute order everywhere. *)

val dfs_order : Cdag.t -> Cdag.vertex array
(** A depth-first post-order of the non-input vertices, rooted at the
    outputs (remaining vertices appended in the same style).  On trees
    and other fan-in-dominated CDAGs this keeps the live set small —
    it reaches the exhaustive optimum on reduction trees where the
    breadth-first {!default_order} spills. *)

type policy =
  | Lru     (** evict the least-recently-used value — models real caches *)
  | Belady  (** evict the value with the furthest next use — the optimal
                offline policy for a fixed compute order, hence the
                tighter upper bound *)

val schedule :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  s:int ->
  Rbw_game.move list
(** Execute the compute vertices in [order] (default: the deterministic
    topological order of {!Dmc_cdag.Topo.order}, restricted to non-input
    vertices) with [s] red pebbles and the given eviction policy.
    Operands are loaded on demand; victims still live (or tagged
    outputs not yet in slow memory) are stored before eviction; dead
    values are deleted eagerly; never-used inputs are loaded once at the
    end so the white-pebble completion condition holds.

    Raises [Failure] when some vertex needs more than [s - 1] operands,
    or [Invalid_argument] when [order] is not a permutation of the
    non-input vertices or not topological.  [budget] is ticked once per
    fired vertex, so huge schedules can be deadline-bounded; internal
    invariant violations raise {!Dmc_util.Budget.Internal_error} with
    the graph size, capacities and step. *)

val io :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  s:int ->
  int
(** I/O cost of {!schedule}. *)

val trivial : Cdag.t -> Rbw_game.move list
(** The no-reuse baseline: every operand is loaded just before each
    use and every result stored immediately — cost
    [Σ_v (indeg v + 1) + #unused inputs].  Valid whenever
    [s >= max indegree + 1]. *)

val trivial_io : Cdag.t -> int
(** I/O cost of {!trivial} without materializing the moves. *)

val hierarchical :
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  s1:int ->
  s2:int ->
  Prbw_game.move list
(** A single-processor execution through the paper's three-level shape
    (registers of [s1] words, a cache of [s2] words, one unbounded
    memory; see {!Dmc_machine.Hierarchy.cluster} with one node and one
    core): operands are staged memory→cache→registers with
    policy-driven eviction at both levels; values evicted from the
    registers that are still live are written back into the cache, and
    from the cache into memory, so every emitted game is valid.  The
    resulting {!Prbw_game.stats} expose the per-boundary traffic that
    Theorems 5 and 6 bound.  Requires [s2 >= 2] spare cache slots
    beyond the register working set; raises [Failure] when a vertex's
    operand set cannot fit. *)

val hierarchical_hierarchy : s1:int -> s2:int -> Hierarchy.t
(** The hierarchy {!hierarchical} games are valid against. *)

val smp_shared :
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  cores:int ->
  s1:int ->
  s2:int ->
  Prbw_game.move list
(** A multi-core, shared-cache execution (the within-node half of
    Fig. 1): [cores] processors with [s1]-word register files under one
    [s2]-word cache and one memory.  Compute vertices are assigned
    round-robin over the cores in [order]; operands are staged
    memory→cache→the owning core's registers, results written back to
    the cache, registers cleared after each fire.  Produces a valid
    P-RBW game against {!smp_hierarchy}; its cache↔memory boundary
    traffic is what Theorem 5 bounds with the {e shared} capacity
    [S_2].  Requires [s1 >= max indegree + 1]. *)

val smp_hierarchy : cores:int -> s1:int -> s2:int -> Hierarchy.t
(** [cores x s1] register files over one [s2]-word cache over one
    unbounded memory. *)

val mp_schedule :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  p:int ->
  s:int ->
  Mp_game.move list
(** A [p]-processor execution with private [s]-word fast memories for
    the multi-processor game: compute vertices are assigned round-robin
    over the processors in [order]; a value produced on one processor
    and consumed on another is published through slow memory (store at
    the producer, load at the consumer), so the emitted game's I/O
    count is the execution's communication volume.  Per-processor
    eviction mirrors {!schedule} (policy-driven victims, live victims
    stored first, dead values dropped eagerly, unused inputs read once
    at the end).  At [p = 1] the emitted game is move-for-move
    {!schedule}'s, so measured I/O agrees exactly with the
    single-processor upper bound.  Every emitted game replays cleanly
    through {!Mp_game.run}.  Raises [Failure] when some vertex needs
    more than [s - 1] operands. *)

val mp_io :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  p:int ->
  s:int ->
  int
(** I/O cost (= communication volume) of {!mp_schedule}. *)

val mp_trivial : Cdag.t -> p:int -> Mp_game.move list
(** The no-reuse multi-processor baseline: operands loaded just before
    each use, every result stored immediately, vertices round-robin
    over the processors.  Valid whenever [s >= max indegree + 1]. *)

val mp_trivial_io : Cdag.t -> int
(** I/O cost of {!mp_trivial} — independent of [p]. *)

val pc_schedule :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  s:int ->
  Pc_game.move list
(** A partial-computation execution: each vertex is begun as an
    accumulator, absorbs its operands one at a time (so only the
    accumulator and the operand in flight are pinned — any in-degree
    fits in two red pebbles), and is finished before its consumers
    run.  Operand residency is managed by the same policy-driven cache
    as {!schedule}.  Every emitted game replays cleanly through
    {!Pc_game.run}.  Raises [Invalid_argument] when [s < 2]. *)

val pc_io :
  ?budget:Budget.t ->
  ?policy:policy ->
  ?order:Cdag.vertex array ->
  Cdag.t ->
  s:int ->
  int
(** I/O cost of {!pc_schedule}. *)

val spmd :
  Cdag.t ->
  Hierarchy.t ->
  owner:(Cdag.vertex -> int) ->
  ?order:Cdag.vertex array ->
  unit ->
  Prbw_game.move list
(** A bulk-synchronous parallel execution for a two-level hierarchy
    with one level-[L] memory per processor ([L = 2], [N_2 = N_1]):
    vertices are fired in [order] by their owning processor; operands
    owned remotely are fetched with [Remote_get] (counted as horizontal
    traffic) the first time the local memory needs them; every result
    is written back to the owner's memory.  Registers hold only the
    operands of the vertex in flight, so [S_1 >= max indegree + 1]
    suffices.  Raises [Invalid_argument] on an unsupported hierarchy
    shape or a bad owner index. *)
