module Budget = Dmc_util.Budget
module Cdag = Dmc_cdag.Cdag
module Heap = Dmc_util.Heap

exception Too_large of string

let popcount =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  fun x -> go x 0

let pred_masks g =
  Array.init (Cdag.n_vertices g) (fun v ->
      Cdag.fold_pred g v (fun m u -> m lor (1 lsl u)) 0)

let mask_of_list vs = List.fold_left (fun m v -> m lor (1 lsl v)) 0 vs

(* Generic Dijkstra over integer-encoded states.  [budget] is ticked
   once per popped state, so a deadline interrupts the search within
   one expansion. *)
let c_states = Dmc_obs.Counter.make "optimal.states_expanded"

(* Optimal game cost per completed search — one observation per solved
   instance, so the distribution tracks instance difficulty rather than
   inner-loop volume. *)
let h_game_cost = Dmc_obs.Histogram.make "optimal.game_cost"

let dijkstra ?budget ~max_states ~start ~is_goal ~successors () =
  let dist = Hashtbl.create 4096 in
  let heap = Heap.create () in
  Hashtbl.replace dist start 0;
  Heap.push heap ~prio:0 ~value:start;
  let answer = ref None in
  while !answer = None && not (Heap.is_empty heap) do
    (match budget with None -> () | Some b -> Budget.tick b);
    Dmc_obs.Counter.incr c_states;
    match Heap.pop_min heap with
    | None -> ()
    | Some (cost, state) ->
        let best = try Hashtbl.find dist state with Not_found -> max_int in
        if cost <= best then
          if is_goal state then answer := Some cost
          else
            successors state (fun cost' state' ->
                let cost' = cost + cost' in
                let known =
                  try Hashtbl.find dist state' with Not_found -> max_int
                in
                if cost' < known then begin
                  if Hashtbl.length dist >= max_states then
                    raise (Too_large "Optimal: state budget exhausted");
                  Hashtbl.replace dist state' cost';
                  Heap.push heap ~prio:cost' ~value:state'
                end)
  done;
  match !answer with
  | Some c ->
      Dmc_obs.Histogram.observe h_game_cost c;
      c
  | None -> raise (Too_large "Optimal: no complete game found (exhausted states)")

let rbw_io ?budget ?(max_states = 2_000_000) g ~s =
  if s <= 0 then invalid_arg "Optimal.rbw_io: s must be positive";
  let n = Cdag.n_vertices g in
  if n > 20 then raise (Too_large "Optimal.rbw_io: more than 20 vertices");
  if not (Dmc_cdag.Validate.is_rbw g) then
    invalid_arg "Optimal.rbw_io: graph violates the RBW convention";
  let preds = pred_masks g in
  let input_mask = mask_of_list (Cdag.inputs g) in
  let output_mask = mask_of_list (Cdag.outputs g) in
  let all_mask = (1 lsl n) - 1 in
  (* State layout: white | red | blue, n bits each. *)
  let encode ~white ~red ~blue = (white lsl (2 * n)) lor (red lsl n) lor blue in
  let white_of st = st lsr (2 * n) in
  let red_of st = (st lsr n) land all_mask in
  let blue_of st = st land all_mask in
  let start = encode ~white:0 ~red:0 ~blue:input_mask in
  let is_goal st =
    white_of st = all_mask && output_mask land lnot (blue_of st) = 0
  in
  let successors st push =
    let white = white_of st and red = red_of st and blue = blue_of st in
    let full = popcount red >= s in
    (* Place a red (+ white) pebble on [v]; when full, branch over the
       victim to delete first.  A compute's victim must not be one of
       its predecessors — they have to stay red through the firing. *)
    let place ?(protect = 0) cost v =
      let bit = 1 lsl v in
      if not full then
        push cost (encode ~white:(white lor bit) ~red:(red lor bit) ~blue)
      else
        for r = 0 to n - 1 do
          if red land (1 lsl r) <> 0 && protect land (1 lsl r) = 0 then
            push cost
              (encode ~white:(white lor bit)
                 ~red:((red land lnot (1 lsl r)) lor bit)
                 ~blue)
        done
    in
    for v = 0 to n - 1 do
      let bit = 1 lsl v in
      if red land bit = 0 then begin
        (* R1: load *)
        if blue land bit <> 0 then place 1 v;
        (* R3: compute *)
        if
          white land bit = 0
          && input_mask land bit = 0
          && preds.(v) land lnot red = 0
        then place ~protect:preds.(v) 0 v
      end
      else if blue land bit = 0 then
        (* R2: store *)
        push 1 (encode ~white ~red ~blue:(blue lor bit))
    done
  in
  Dmc_obs.Span.with_
    ~attrs:[ ("s", string_of_int s); ("n", string_of_int n) ]
    "optimal.rbw_io"
    (fun () -> dijkstra ?budget ~max_states ~start ~is_goal ~successors ())

let rb_io ?budget ?(max_states = 2_000_000) g ~s =
  if s <= 0 then invalid_arg "Optimal.rb_io: s must be positive";
  let n = Cdag.n_vertices g in
  if n > 31 then raise (Too_large "Optimal.rb_io: more than 31 vertices");
  if not (Dmc_cdag.Validate.is_hong_kung g) then
    invalid_arg "Optimal.rb_io: graph violates the Hong-Kung convention";
  let preds = pred_masks g in
  let input_mask = mask_of_list (Cdag.inputs g) in
  let output_mask = mask_of_list (Cdag.outputs g) in
  let encode ~red ~blue = (red lsl n) lor blue in
  let red_of st = st lsr n in
  let blue_of st = st land ((1 lsl n) - 1) in
  let start = encode ~red:0 ~blue:input_mask in
  let is_goal st = output_mask land lnot (blue_of st) = 0 in
  let successors st push =
    let red = red_of st and blue = blue_of st in
    let full = popcount red >= s in
    let place ?(protect = 0) cost v =
      let bit = 1 lsl v in
      if not full then push cost (encode ~red:(red lor bit) ~blue)
      else
        for r = 0 to n - 1 do
          if red land (1 lsl r) <> 0 && protect land (1 lsl r) = 0 then
            push cost (encode ~red:((red land lnot (1 lsl r)) lor bit) ~blue)
        done
    in
    for v = 0 to n - 1 do
      let bit = 1 lsl v in
      if red land bit = 0 then begin
        if blue land bit <> 0 then place 1 v;
        if input_mask land bit = 0 && preds.(v) land lnot red = 0 then
          place ~protect:preds.(v) 0 v
      end
      else if blue land bit = 0 then push 1 (encode ~red ~blue:(blue lor bit))
    done
  in
  Dmc_obs.Span.with_
    ~attrs:[ ("s", string_of_int s); ("n", string_of_int n) ]
    "optimal.rb_io"
    (fun () -> dijkstra ?budget ~max_states ~start ~is_goal ~successors ())

let min_balanced_horizontal ?budget ?(slack = 0) g ~procs =
  if procs < 1 then invalid_arg "Optimal.min_balanced_horizontal";
  let compute =
    Cdag.fold_vertices g
      (fun acc v -> if Cdag.is_input g v then acc else v :: acc)
      []
    |> List.rev |> Array.of_list
  in
  let n' = Array.length compute in
  if n' > 14 then
    raise (Too_large "Optimal.min_balanced_horizontal: more than 14 compute vertices");
  let cap = ((n' + procs - 1) / procs) + slack in
  let assign = Array.make n' 0 in
  let load = Array.make procs 0 in
  let best_cost = ref max_int in
  let best_assign = ref (Array.make n' 0) in
  (* cost of a complete assignment: every computed value is fetched
     once into each foreign node that consumes it; inputs are free
     (they can be Input-ed anywhere straight from blue) *)
  let cost () =
    let proc_of = Hashtbl.create 32 in
    Array.iteri (fun i v -> Hashtbl.replace proc_of v assign.(i)) compute;
    let total = ref 0 in
    Array.iteri
      (fun i v ->
        let home = assign.(i) in
        let consumers = Hashtbl.create 4 in
        Cdag.iter_succ g v (fun w ->
            match Hashtbl.find_opt proc_of w with
            | Some q when q <> home -> Hashtbl.replace consumers q ()
            | _ -> ());
        total := !total + Hashtbl.length consumers)
      compute;
    !total
  in
  let rec go i =
    (match budget with None -> () | Some b -> Budget.tick b);
    if i = n' then begin
      let c = cost () in
      if c < !best_cost then begin
        best_cost := c;
        best_assign := Array.copy assign
      end
    end
    else
      (* canonical symmetry breaking: vertex i may only open processor
         max-used-so-far + 1 *)
      let max_used = ref (-1) in
      for j = 0 to i - 1 do
        if assign.(j) > !max_used then max_used := assign.(j)
      done;
      for p = 0 to min (procs - 1) (!max_used + 1) do
        if load.(p) < cap then begin
          assign.(i) <- p;
          load.(p) <- load.(p) + 1;
          go (i + 1);
          load.(p) <- load.(p) - 1
        end
      done
  in
  if n' = 0 then (0, Array.make (Cdag.n_vertices g) 0)
  else begin
    go 0;
    (* full per-vertex assignment: inputs placed with a consumer *)
    let proc_of = Hashtbl.create 32 in
    Array.iteri (fun i v -> Hashtbl.replace proc_of v !best_assign.(i)) compute;
    let out = Array.make (Cdag.n_vertices g) 0 in
    Cdag.iter_vertices g (fun v ->
        out.(v) <-
          (match Hashtbl.find_opt proc_of v with
          | Some p -> p
          | None ->
              (* an input: home it at its first consumer *)
              Cdag.fold_succ g v
                (fun acc w ->
                  match Hashtbl.find_opt proc_of w with
                  | Some p when acc < 0 -> p
                  | _ -> acc)
                (-1)
              |> max 0));
    (!best_cost, out)
  end
