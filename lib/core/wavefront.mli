module Budget := Dmc_util.Budget
module Cdag := Dmc_cdag.Cdag
module Rng := Dmc_util.Rng

(** The min-cut / wavefront lower bound of Section 3.3.

    For a vertex [x], any schedule must at some instant hold the whole
    wavefront [W(x)] — the evaluated vertices that still have
    unevaluated successors, plus [x] itself — simultaneously "live".
    The minimum cardinality wavefront [Wmin(x)] over all valid convex
    partitions [(S_x, T_x)] (with [S_x ⊇ {x} ∪ Anc(x)] and
    [T_x ⊇ Desc(x)]) is a vertex min-cut, computable by max-flow.
    Lemma 2 then gives, for a CDAG with no inputs,
    [IO >= 2 (|Wmin(x)| - S)]. *)

val min_wavefront : ?budget:Budget.t -> Cdag.t -> Cdag.vertex -> int
(** [|Wmin(x)|]: the vertex min-cut separating [{x} ∪ Anc(x)] from
    [Desc(x)] (descendants uncuttable).  Returns 1 when [x] has no
    descendants (only [x] itself is live). *)

val min_wavefront_cut :
  ?budget:Budget.t -> Cdag.t -> Cdag.vertex -> int * Cdag.vertex list
(** Also returns one minimum cut (the wavefront vertices). *)

val wmax_exact : ?budget:Budget.t -> Cdag.t -> int
(** [w_max = max_x |Wmin(x)|] over every vertex — one max-flow per
    vertex, so quadratic-ish; intended for small and mid-size CDAGs. *)

val wmax_exact_par : ?domains:int -> Cdag.t -> int
(** {!wmax_exact} with the per-vertex max-flows fanned out over OCaml 5
    domains (default {!Domain.recommended_domain_count}); the flows are
    independent and the CDAG is immutable, so the sweep is
    embarrassingly parallel.  Falls back to the sequential sweep for
    one domain or tiny graphs. *)

val wmax_sampled : ?budget:Budget.t -> Rng.t -> Cdag.t -> samples:int -> int
(** Max of [|Wmin(x)|] over a random sample of vertices.  Always a
    valid (possibly weaker) stand-in for [w_max] in {!lemma2_bound},
    because Lemma 2 holds for {e every} [x]. *)

val wmax_sampled_anytime :
  ?budget:Budget.t -> Rng.t -> Cdag.t -> samples:int -> int
(** Like {!wmax_sampled}, but budget exhaustion mid-sweep returns the
    best wavefront found so far instead of raising — the graceful
    degradation rung of the CLI's fallback ladder.  With no completed
    sample the result is 0 (so {!lower_bound}-style formulas fall back
    to their floors). *)

val lemma2_bound : wavefront:int -> s:int -> int
(** [max 0 (2 * (wavefront - s))]. *)

(** {1 Certificates}

    A wavefront bound of [k] at [x] is witnessed by [k] directed paths
    from [{x} ∪ Anc(x)] into [Desc(x)] that are pairwise
    vertex-disjoint outside [Desc(x)]: by Menger's theorem any valid
    convex partition must then hold [k] distinct live vertices when [x]
    fires.  The witness is extracted from the max-flow and can be
    re-checked independently of the flow machinery. *)

type witness = {
  x : Cdag.vertex;
  paths : Cdag.vertex list list;
}

val witness : Cdag.t -> Cdag.vertex -> witness
(** A maximum witness for [x]; [List.length paths = min_wavefront g x]
    (both are the max-flow value).  For a descendant-free [x] the
    witness is the trivial [{ x; paths = [] }]. *)

val verify_witness : Cdag.t -> witness -> bool
(** Re-check a witness from first principles: every path is a directed
    path in the graph, starts at [x] or an ancestor of [x], ends in
    [Desc(x)], and the paths share no vertex outside [Desc(x)].
    Deliberately reimplements nothing from the flow layer. *)

val lower_bound_via : (Cdag.t -> int) -> Cdag.t -> s:int -> int
(** The {!lower_bound} formula with a caller-supplied max-min-wavefront
    sweep: strips inputs (resp. inputs and outputs), applies [wmax] to
    each stripped graph, and combines via {!lemma2_bound} plus the
    dropped-tag credits.  Sound for any [wmax] that returns
    [|Wmin(x)|] of {e some} vertex [x] (Lemma 2 holds for every
    vertex) — this is the hook the graceful-degradation ladder uses to
    swap {!wmax_exact} for {!wmax_sampled_anytime}. *)

val lower_bound :
  ?budget:Budget.t -> ?samples:int -> ?rng:Rng.t -> Cdag.t -> s:int -> int
(** End-to-end bound for an arbitrary CDAG: strip the tagged
    input/output vertices (Corollary 2), compute the max min-wavefront
    of the remainder — exactly when it has at most [exact_threshold]
    vertices, else over [samples] sampled vertices (default 64) — and
    return [2 (w - S) + |dI| + |dO|], clamped below by
    [|dI| + |dO|]. *)

val exact_threshold : int
(** Vertex-count cutoff (512) below which {!lower_bound} uses
    {!wmax_exact}. *)
