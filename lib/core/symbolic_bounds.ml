module Cdag = Dmc_cdag.Cdag
module Expr = Dmc_symbolic.Expr
module Json = Dmc_util.Json
module Shapes = Dmc_gen.Shapes
module Fft = Dmc_gen.Fft
module Stencil = Dmc_gen.Stencil
module Grid = Dmc_gen.Grid
module Workload = Dmc_gen.Workload

(* The recombination scheme, family by family:

   Theorem 2 lets us cut a CDAG into disjoint pieces and sum per-piece
   lower bounds.  For the regular generators the pieces fall into a
   handful of isomorphism classes — every interior stencil block looks
   like every other — and the isomorphisms preserve the piece's
   Theorem-2 tagging (I and O restricted to the piece).  The induced
   piece and the class representative then freeze to byte-identical
   CSR structures, and the wavefront engine is deterministic given the
   structure (it seeds its own rng per call), so

       engine(piece) = engine(representative)

   holds exactly, not just approximately.  The whole-graph bound
   collapses to

       sum over classes of  count(class) * engine(representative),

   with the counts closed forms in the size variable [n].  One small
   representative per class is the only thing ever materialized, so
   the scheme prices a billion-node bound at a few tile analyses. *)

type cls = {
  cls_name : string;
  cls_count : Expr.t;  (** copies of this class, as a closed form in [n] *)
  cls_count_now : int;
  cls_bound : int;  (** engine bound of the representative *)
  cls_tile_vertices : int;
}

type t = {
  family : string;
  spec : string;
  size : int;
  s : int;
  tile : int;
  samples : int;
  formula : Expr.t;
  value : int;
  classes : cls list;
  dropped : string option;
  n_vertices : int;
}

let families =
  [ "chain"; "tree"; "diamond"; "fft"; "jacobi1d"; "jacobi2d"; "jacobi3d" ]

let supports name = List.mem name families

let default_samples = 8

(* engine shared by the symbolic side and the numeric reference; the
   per-call seed in Wavefront.lower_bound makes it a pure function of
   the frozen structure *)
let engine ~samples ~s g = Wavefront.lower_bound ~samples g ~s

(* ---- plan: the family-specific partition description ------------- *)

(* [pl_color]/[pl_zero] describe the same partition over the
   materialized instance, for cross-validation at overlapping sizes:
   [pl_color v] is the piece of vertex [v], and pieces listed in
   [pl_zero] are the ones the symbolic side bounds by the trivial 0. *)
type plan = {
  pl_classes : (string * Expr.t * int * Cdag.t) list;
      (* name, count in n, count at this instance, representative *)
  pl_dropped : string option;
  pl_tile : int;
  pl_n_pieces : int;
  pl_color : Cdag.t -> int array;
  pl_zero : int list;
}

let nvar = Expr.var "n"

let cint = Expr.int

(* Exact power-of-two helpers for the FFT plan. *)
let rec log2i v = if v <= 1 then 0 else 1 + log2i (v / 2)

(* ---- chain ------------------------------------------------------- *)

(* Contiguous id blocks of width [w].  Interior blocks carry no tags;
   the first keeps the input, the last the output. *)
let plan_chain ~tile n =
  let w = min tile n in
  let full = n / w and rem = n mod w in
  let nblocks = full + if rem > 0 then 1 else 0 in
  let retag g ~inp ~outp =
    Cdag.retag g
      ~inputs:(if inp then [ 0 ] else [])
      ~outputs:(if outp then [ Cdag.n_vertices g - 1 ] else [])
  in
  let classes =
    if nblocks = 1 then
      [ ("whole", cint 1, 1, Shapes.chain n) ]
    else begin
      let first = ("first", cint 1, 1, retag (Shapes.chain w) ~inp:true ~outp:false) in
      let last_w = if rem > 0 then rem else w in
      let last =
        ("last", cint 1, 1, retag (Shapes.chain last_w) ~inp:false ~outp:true)
      in
      (* interior full blocks: floor(n/w) minus the full endpoint blocks *)
      let full_endpoints = 1 + if rem = 0 then 1 else 0 in
      let n_interior = full - full_endpoints in
      if n_interior > 0 then
        [
          first;
          ( "interior",
            Expr.(Sub (floor_ (nvar / cint w), cint full_endpoints)),
            n_interior,
            retag (Shapes.chain w) ~inp:false ~outp:false );
          last;
        ]
      else [ first; last ]
    end
  in
  {
    pl_classes = classes;
    pl_dropped = None;
    pl_tile = w;
    pl_n_pieces = nblocks;
    pl_color = (fun _ -> Array.init n (fun v -> min (v / w) (nblocks - 1)));
    pl_zero = [];
  }

(* ---- binary reduction tree -------------------------------------- *)

(* Groups of [w] consecutive leaves each reduce within their own
   vertex set (pairing in Shapes.reduction_tree is position-local), so
   every full group induces the same sub-CDAG: a reduction tree over
   [w] tagged leaves with an untagged root.  Everything above the
   group roots is one leftover piece, bounded by the trivial 0 — sound
   under Theorem 2, and small: it costs the closed form nothing but an
   [O(n/w)] additive term it chooses not to claim. *)
let plan_tree ~tile n =
  (* power-of-two group width keeps full groups carry-free *)
  let w = max 2 (1 lsl log2i (min tile n)) in
  if n <= w then begin
    let g = Shapes.reduction_tree n in
    {
      pl_classes = [ ("whole", cint 1, 1, g) ];
      pl_dropped = None;
      pl_tile = n;
      pl_n_pieces = 1;
      pl_color = (fun g -> Array.make (Cdag.n_vertices g) 0);
      pl_zero = [];
    }
  end
  else begin
    let full = n / w and rem = n mod w in
    let ngroups = full + if rem > 0 then 1 else 0 in
    let subtree leaves =
      let g = Shapes.reduction_tree leaves in
      Cdag.retag g ~inputs:(List.init leaves (fun i -> i)) ~outputs:[]
    in
    let classes =
      ( "subtree",
        Expr.(floor_ (nvar / cint w)),
        full,
        subtree w )
      ::
      (if rem > 1 then [ ("subtree-rem", cint 1, 1, subtree rem) ] else [])
    in
    (* a 1-leaf remainder group is a single tagged input vertex; its
       induced piece still exists (one vertex, bound |dI| = 1) *)
    let classes =
      if rem = 1 then
        classes
        @ [
            ( "subtree-rem",
              cint 1,
              1,
              Cdag.retag (Shapes.chain 1) ~inputs:[ 0 ] ~outputs:[] );
          ]
      else classes
    in
    let color g =
      let nv = Cdag.n_vertices g in
      let color = Array.make nv (-1) in
      let top = ngroups in
      for v = 0 to nv - 1 do
        if v < n then color.(v) <- min (v / w) (ngroups - 1)
        else begin
          (* both children already colored (smaller ids); the piece
             survives only if they agree *)
          let c = ref (-2) in
          Cdag.iter_pred g v (fun u ->
              if !c = -2 then c := color.(u)
              else if !c <> color.(u) then c := top);
          color.(v) <- (if !c >= 0 && !c < top then !c else top)
        end
      done;
      color
    in
    {
      pl_classes = classes;
      pl_dropped = Some "top recombination tree (bounded by 0)";
      pl_tile = w;
      pl_n_pieces = ngroups + 1;
      pl_color = color;
      pl_zero = [ ngroups ];
    }
  end

(* ---- diamond lattice (square) ----------------------------------- *)

let plan_diamond ~tile n =
  let w = min tile n in
  let full = n / w and rem = n mod w in
  let nb = full + if rem > 0 then 1 else 0 in
  let block ~rows ~cols ~inp ~outp =
    let g = Shapes.diamond ~rows ~cols in
    Cdag.retag g
      ~inputs:(if inp then [ 0 ] else [])
      ~outputs:(if outp then [ (rows * cols) - 1 ] else [])
  in
  let classes =
    if nb = 1 then
      [ ("whole", cint 1, 1, block ~rows:n ~cols:n ~inp:true ~outp:true) ]
    else begin
      let fl = Expr.(floor_ (nvar / cint w)) in
      let acc = ref [] in
      let add name count count_now rows cols inp outp =
        if count_now > 0 then
          acc := (name, count, count_now, block ~rows ~cols ~inp ~outp) :: !acc
      in
      let term_is_full = rem = 0 in
      (* origin block (0,0) is full on both axes (nb >= 2 here, so it
         is never also the terminal block) *)
      add "origin" (cint 1) 1 w w true false;
      if term_is_full then add "terminal" (cint 1) 1 w w false true;
      let n_ff_endpoints = 1 + if term_is_full then 1 else 0 in
      add "interior"
        Expr.(Sub (Mul (fl, fl), cint n_ff_endpoints))
        ((full * full) - n_ff_endpoints)
        w w false false;
      if rem > 0 then begin
        (* the remainder strips along each axis, and the remainder
           corner (which holds the output) *)
        add "east" fl full w rem false false;
        add "south" fl full rem w false false;
        add "terminal" (cint 1) 1 rem rem false true
      end;
      List.rev !acc
    end
  in
  {
    pl_classes = classes;
    pl_dropped = None;
    pl_tile = w;
    pl_n_pieces = nb * nb;
    pl_color =
      (fun _ ->
        Array.init (n * n) (fun v ->
            let i = v / n and j = v mod n in
            (min (i / w) (nb - 1) * nb) + min (j / w) (nb - 1)));
    pl_zero = [];
  }

(* ---- Jacobi stencils -------------------------------------------- *)

(* Spatial blocks of side [w] spanning all time steps.  A block's
   induced piece is exactly the stencil on the block's own box —
   cross-block neighbor edges drop, interior and boundary blocks alike
   — with the block's t=0 points tagged input and t=T points output,
   i.e. the generator run at the block dimensions. *)
let plan_jacobi ~tile ~shape ~dim ~steps n =
  (* cap the block so one representative stays materializable:
     w^dim * (steps+1) vertices, at most ~60k *)
  let cap =
    let per_slice = max 1 (60_000 / (steps + 1)) in
    max 4
      (int_of_float
         (Float.pow (float_of_int per_slice) (1.0 /. float_of_int dim)))
  in
  let w = min (min tile n) cap in
  let full = n / w and rem = n mod w in
  let widths = if rem > 0 then [ w; rem ] else [ w ] in
  (* one class per per-dimension width combination *)
  let rec combos d =
    if d = 0 then [ [] ]
    else
      List.concat_map (fun tail -> List.map (fun h -> h :: tail) widths) (combos (d - 1))
  in
  let classes =
    List.filter_map
      (fun dims ->
        let count_now =
          List.fold_left (fun acc wd -> acc * if wd = w then full else 1) 1 dims
        in
        if count_now = 0 then None
        else begin
          let n_full = List.length (List.filter (fun wd -> wd = w) dims) in
          let count =
            if n_full = 0 then cint 1
            else
              Expr.(
                Pow (floor_ (nvar / cint w), cint n_full))
          in
          let name =
            "block["
            ^ String.concat "x" (List.map string_of_int dims)
            ^ "]"
          in
          let rep = (Stencil.jacobi ~shape ~dims ~steps ()).Stencil.graph in
          Some (name, Expr.simplify count, count_now, rep)
        end)
      (combos dim)
  in
  let nb = full + if rem > 0 then 1 else 0 in
  let color g =
    let nv = Cdag.n_vertices g in
    let npts =
      let rec go acc i = if i = 0 then acc else go (acc * n) (i - 1) in
      go 1 dim
    in
    let grid = Grid.create (List.init dim (fun _ -> n)) in
    ignore nv;
    Array.init (Cdag.n_vertices g) (fun v ->
        let x = v mod npts in
        let coords = Grid.coord grid x in
        List.fold_left
          (fun acc c -> (acc * nb) + min (c / w) (nb - 1))
          0 coords)
  in
  {
    pl_classes = classes;
    pl_dropped = None;
    pl_tile = w;
    pl_n_pieces =
      (let rec go acc i = if i = 0 then acc else go (acc * nb) (i - 1) in
       go 1 dim);
    pl_color = color;
    pl_zero = [];
  }

(* ---- FFT butterfly ---------------------------------------------- *)

(* Rank bands of m stages (m+1 rank rows per full band).  A band's
   columns split by the bits outside the band's active window into
   n / 2^m groups, each inducing a butterfly(m) copy; only the first
   band keeps input tags, only the last keeps outputs.  [n] in the
   closed form is the row width 2^K. *)
let plan_fft ~tile k =
  let n = 1 lsl k in
  (* stages per band: tile counts butterfly stages here *)
  let m = max 1 (min k (min tile 20)) in
  let band_ranks = m + 1 in
  let nbands = (k + 1 + band_ranks - 1) / band_ranks in
  let rem_ranks = (k + 1) mod band_ranks in
  let band_of_rank r = r / band_ranks in
  let stages_of_band b =
    let ranks =
      if b = nbands - 1 && rem_ranks > 0 then rem_ranks else band_ranks
    in
    ranks - 1
  in
  let rep b =
    let st = stages_of_band b in
    let g = Fft.butterfly st in
    let width = 1 lsl st in
    let inputs = if b = 0 then List.init width (fun i -> i) else [] in
    let outputs =
      if b = nbands - 1 then List.init width (fun i -> (st * width) + i)
      else []
    in
    Cdag.retag g ~inputs ~outputs
  in
  let copies_expr st = Expr.(nvar / cint (1 lsl st)) in
  let copies_now st = n / (1 lsl st) in
  let classes =
    if nbands = 1 then [ ("whole", cint 1, 1, rep 0) ]
    else begin
      let acc = ref [] in
      let add name count count_now b =
        if count_now > 0 then acc := (name, count, count_now, rep b) :: !acc
      in
      add "first" (copies_expr m) (copies_now m) 0;
      let interior = nbands - 2 in
      (* interior band count as a closed form in n = 2^K:
         floor((log2 n + 1) / (m+1)) full bands, minus the endpoint
         full bands *)
      (if interior > 0 then
         let full_endpoints = 1 + if rem_ranks = 0 then 1 else 0 in
         let count =
           Expr.(
             Mul
               ( Sub
                   ( floor_ (Div (Add (Log2 nvar, cint 1), cint band_ranks)),
                     cint full_endpoints ),
                 copies_expr m ))
         in
         add "interior" count (interior * copies_now m) 1);
      let last_st = stages_of_band (nbands - 1) in
      add "last" (copies_expr last_st) (copies_now last_st) (nbands - 1);
      List.rev !acc
    end
  in
  (* piece index: bands in order, then the column group (active bits
     compressed out) within the band *)
  let band_base = Array.make (nbands + 1) 0 in
  for b = 0 to nbands - 1 do
    band_base.(b + 1) <- band_base.(b) + copies_now (stages_of_band b)
  done;
  let color g =
    Array.init (Cdag.n_vertices g) (fun v ->
        let rank = v / n and col = v mod n in
        let b = band_of_rank rank in
        let a = b * band_ranks in
        let st = stages_of_band b in
        let group = ((col lsr (a + st)) lsl a) lor (col land ((1 lsl a) - 1)) in
        band_base.(b) + group)
  in
  {
    pl_classes = classes;
    pl_dropped = None;
    pl_tile = m;
    pl_n_pieces = band_base.(nbands);
    pl_color = color;
    pl_zero = [];
  }

(* ---- spec plumbing ---------------------------------------------- *)

let parse_spec spec =
  let name, raw =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let rec ints acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> (
        match int_of_string_opt a with
        | Some v -> ints (v :: acc) rest
        | None -> Error (Printf.sprintf "parameter '%s' is not an integer" a))
  in
  match ints [] raw with Ok args -> Ok (name, args) | Error _ as e -> e

(* fill omitted trailing parameters from the implicit registry's
   defaults, so e.g. "jacobi1d:1000000000" means T = 8 *)
let resolve_args name args =
  match Workload.find_implicit name with
  | None -> Ok args
  | Some w ->
      let want = List.length w.Workload.iparams
      and ndef = List.length w.Workload.idefaults
      and got = List.length args in
      if got > want || got < want - ndef then
        Error
          (Printf.sprintf "'%s' expects %d-%d parameters (%s)" name
             (want - ndef) want
             (Workload.implicit_signature w))
      else begin
        let missing = want - got in
        let rec drop j l = if j = 0 then l else drop (j - 1) (List.tl l) in
        Ok (args @ drop (ndef - missing) w.Workload.idefaults)
      end

let default_tile ~s = max 64 (2 * s)

(* fft's tile is stages-per-band: the representative has (m+1) * 2^m
   vertices, so the default is log-scaled (2^m ~ 2S) where the block
   families scale linearly *)
let default_fft_tile ~s =
  let target = default_tile ~s in
  let rec go m = if 2 lsl m <= target && m < 20 then go (m + 1) else m in
  go 1

let plan_of ~tile ~s name args =
  let tile_for = function
    | "fft" -> Option.value tile ~default:(default_fft_tile ~s)
    (* the engine's per-sample min-cut makes diamond cost grow ~w^4,
       so the default stays small; pass --tile > S (and patience) for
       a nontrivial per-block wavefront *)
    | "diamond" -> Option.value tile ~default:(min (default_tile ~s) 64)
    | _ -> Option.value tile ~default:(default_tile ~s)
  in
  let tile = tile_for name in
  match (name, args) with
  | "chain", [ n ] when n > 0 -> Ok (n, plan_chain ~tile n)
  | "tree", [ n ] when n > 0 -> Ok (n, plan_tree ~tile n)
  | "diamond", [ r; c ] when r > 0 && r = c -> Ok (r, plan_diamond ~tile r)
  | "diamond", [ _; _ ] ->
      Error "symbolic diamond requires a square instance (R = C)"
  | "fft", [ k ] when k >= 0 && k <= 55 -> Ok (1 lsl k, plan_fft ~tile k)
  | "jacobi1d", [ n; t ] when n > 0 && t >= 1 ->
      Ok (n, plan_jacobi ~tile ~shape:Stencil.Star ~dim:1 ~steps:t n)
  | "jacobi2d", [ n; t ] when n > 0 && t >= 1 ->
      Ok (n, plan_jacobi ~tile ~shape:Stencil.Box ~dim:2 ~steps:t n)
  | "jacobi3d", [ n; t ] when n > 0 && t >= 1 ->
      Ok (n, plan_jacobi ~tile ~shape:Stencil.Star ~dim:3 ~steps:t n)
  | _ ->
      Error
        (Printf.sprintf
           "no symbolic plan for '%s' (supported: %s; matmul keeps its \
            analytic bound from Formulas)"
           name (String.concat ", " families))

let bound ?(samples = default_samples) ?tile ~spec ~s () =
  if s < 1 then Error "S must be >= 1"
  else
    match parse_spec spec with
    | Error e -> Error e
    | Ok (name, args) -> (
        match resolve_args name args with
        | Error e -> Error e
        | Ok args -> (
            match plan_of ~tile ~s name args with
            | Error e -> Error e
            | Ok (size, plan) ->
                Dmc_obs.Span.with_
                  ~attrs:[ ("spec", spec); ("s", string_of_int s) ]
                  "core.symbolic.bound"
                @@ fun () ->
                let classes =
                  List.map
                    (fun (cname, count, count_now, rep) ->
                      {
                        cls_name = cname;
                        cls_count = Expr.simplify count;
                        cls_count_now = count_now;
                        cls_bound = engine ~samples ~s rep;
                        cls_tile_vertices = Cdag.n_vertices rep;
                      })
                    plan.pl_classes
                in
                let value =
                  List.fold_left
                    (fun acc c -> acc + (c.cls_count_now * c.cls_bound))
                    0 classes
                in
                let formula =
                  Expr.simplify
                    (List.fold_left
                       (fun acc c ->
                         Expr.(
                           Add (acc, Mul (c.cls_count, Expr.int c.cls_bound))))
                       (Expr.int 0) classes)
                in
                let n_vertices =
                  match Workload.build_implicit name args with
                  | Ok imp -> imp.Dmc_cdag.Implicit.n_vertices
                  | Error _ -> 0
                in
                Ok
                  {
                    family = name;
                    spec;
                    size;
                    s;
                    tile = plan.pl_tile;
                    samples;
                    formula;
                    value;
                    classes;
                    dropped = plan.pl_dropped;
                    n_vertices;
                  }))

(* The numeric reference: materialize the instance, cut it with the
   same partition, bound every piece with the same engine (pieces the
   symbolic side drops contribute the same trivial 0), and sum.  By
   construction this must equal {!bound}'s [value] exactly — the
   cross-validation the tests and the CI leg enforce. *)
let numeric_reference ?(samples = default_samples) ?tile ~spec ~s () =
  if s < 1 then Error "S must be >= 1"
  else
    match parse_spec spec with
    | Error e -> Error e
    | Ok (name, args) -> (
        match resolve_args name args with
        | Error e -> Error e
        | Ok args -> (
            match plan_of ~tile ~s name args with
            | Error e -> Error e
            | Ok (_size, plan) -> (
                match Workload.build name args with
                | Error e -> Error e
                | Ok g ->
                    let color = plan.pl_color g in
                    let parts = Decompose.parts g ~color in
                    let total = ref 0 in
                    Array.iteri
                      (fun i part ->
                        if not (List.mem i plan.pl_zero) then
                          total :=
                            !total
                            + engine ~samples ~s part.Dmc_cdag.Subgraph.graph)
                      parts;
                    Ok !total)))

let to_json t =
  Json.Obj
    [
      ("kind", Json.String "dmc-symbolic-bound");
      ("spec", Json.String t.spec);
      ("family", Json.String t.family);
      ("size", Json.Int t.size);
      ("s", Json.Int t.s);
      ("tile", Json.Int t.tile);
      ("samples", Json.Int t.samples);
      ("n_vertices", Json.Int t.n_vertices);
      ("formula", Json.String (Expr.to_string t.formula));
      ("value", Json.Int t.value);
      ( "classes",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("name", Json.String c.cls_name);
                   ("count", Json.String (Expr.to_string c.cls_count));
                   ("count_now", Json.Int c.cls_count_now);
                   ("bound", Json.Int c.cls_bound);
                   ("tile_vertices", Json.Int c.cls_tile_vertices);
                 ])
             t.classes) );
      ("dropped", Json.opt (fun d -> Json.String d) t.dropped);
    ]
