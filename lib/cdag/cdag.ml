module Bitset = Dmc_util.Bitset
module Intvec = Dmc_util.Intvec

type vertex = int

type t = {
  n : int;
  succ_off : int array;   (* length n+1 *)
  succ : int array;       (* concatenated ascending successor rows *)
  pred_off : int array;
  pred : int array;
  input_set : Bitset.t;
  output_set : Bitset.t;
  labels : string array;  (* "" means unlabeled *)
}

let n_vertices g = g.n
let n_edges g = Array.length g.succ

let out_degree g v = g.succ_off.(v + 1) - g.succ_off.(v)
let in_degree g v = g.pred_off.(v + 1) - g.pred_off.(v)

let iter_row off arr v f =
  for k = off.(v) to off.(v + 1) - 1 do
    f (Array.unsafe_get arr k)
  done

let iter_succ g v f = iter_row g.succ_off g.succ v f
let iter_pred g v f = iter_row g.pred_off g.pred v f

let fold_row off arr v f init =
  let acc = ref init in
  for k = off.(v) to off.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get arr k)
  done;
  !acc

let fold_succ g v f init = fold_row g.succ_off g.succ v f init
let fold_pred g v f init = fold_row g.pred_off g.pred v f init

let succ_list g v = List.rev (fold_succ g v (fun acc w -> w :: acc) [])
let pred_list g v = List.rev (fold_pred g v (fun acc w -> w :: acc) [])

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_succ g u (fun v -> f u v)
  done

let has_edge g u v =
  let lo = ref g.succ_off.(u) and hi = ref (g.succ_off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.succ.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let label g v =
  let s = g.labels.(v) in
  if s = "" then "v" ^ string_of_int v else s

let is_input g v = Bitset.mem g.input_set v
let is_output g v = Bitset.mem g.output_set v

let inputs g = Bitset.elements g.input_set
let outputs g = Bitset.elements g.output_set

let n_inputs g = Bitset.cardinal g.input_set
let n_outputs g = Bitset.cardinal g.output_set
let n_compute g = g.n - n_inputs g

let iter_vertices g f =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_vertices g f init =
  let acc = ref init in
  iter_vertices g (fun v -> acc := f !acc v);
  !acc

let sources g =
  List.rev (fold_vertices g (fun acc v -> if in_degree g v = 0 then v :: acc else acc) [])

let sinks g =
  List.rev (fold_vertices g (fun acc v -> if out_degree g v = 0 then v :: acc else acc) [])

let retag g ~inputs ~outputs =
  let input_set = Bitset.create g.n and output_set = Bitset.create g.n in
  let tag set v =
    if v < 0 || v >= g.n then invalid_arg "Cdag.retag: vertex out of range";
    Bitset.add set v
  in
  List.iter (tag input_set) inputs;
  List.iter (tag output_set) outputs;
  { g with input_set; output_set }

let pp_stats ppf g =
  Format.fprintf ppf "cdag: %d vertices, %d edges, %d inputs, %d outputs"
    (n_vertices g) (n_edges g) (n_inputs g) (n_outputs g)

(* Kahn's algorithm; raises if a cycle survives. *)
let check_acyclic n succ_off succ pred_off =
  let indeg = Array.init n (fun v -> pred_off.(v + 1) - pred_off.(v)) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    for k = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ.(k) in
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then Queue.add v queue
    done
  done;
  if !seen <> n then invalid_arg "Cdag: edge relation has a cycle"

module Builder = struct
  (* [hint] is advisory: every store — the parallel edge lists and the
     label table — grows by doubling when the hint undershoots, so a
     build with a wrong (or default) hint stays amortized O(1) per
     vertex/edge instead of degrading to repeated full copies. *)
  type t = {
    mutable nv : int;
    srcs : Intvec.t;  (* parallel edge lists *)
    dsts : Intvec.t;
    mutable labels : string array;  (* first [nv] entries valid *)
  }

  let create ?(hint = 16) () =
    let hint = max 1 hint in
    {
      nv = 0;
      srcs = Intvec.create ~initial_capacity:(4 * hint) ();
      dsts = Intvec.create ~initial_capacity:(4 * hint) ();
      labels = Array.make hint "";
    }

  let add_vertex ?(label = "") b =
    let v = b.nv in
    if v = Array.length b.labels then begin
      let bigger = Array.make (2 * v) "" in
      Array.blit b.labels 0 bigger 0 v;
      b.labels <- bigger
    end;
    b.labels.(v) <- label;
    b.nv <- v + 1;
    v

  let add_edge b u v =
    if u < 0 || u >= b.nv || v < 0 || v >= b.nv then
      invalid_arg "Cdag.Builder.add_edge: vertex out of range";
    if u = v then invalid_arg "Cdag.Builder.add_edge: self-loop";
    Intvec.push b.srcs u;
    Intvec.push b.dsts v

  let n_vertices b = b.nv

  (* Counting sort of the edge list into CSR rows keyed by [key];
     within a row, entries keep relative order of a pre-pass that sorted
     by the other endpoint, giving ascending rows after two passes. *)
  let to_csr n keys values =
    let m = Array.length keys in
    let off = Array.make (n + 1) 0 in
    for k = 0 to m - 1 do
      off.(keys.(k) + 1) <- off.(keys.(k) + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let cursor = Array.copy off in
    let out = Array.make m 0 in
    for k = 0 to m - 1 do
      let row = keys.(k) in
      out.(cursor.(row)) <- values.(k);
      cursor.(row) <- cursor.(row) + 1
    done;
    (off, out)

  let dedup_rows n off arr =
    (* Sort each CSR row ascending and drop duplicates, rebuilding the
       offsets. *)
    let new_off = Array.make (n + 1) 0 in
    let out = Intvec.create ~initial_capacity:(Array.length arr) () in
    for v = 0 to n - 1 do
      let row = Array.sub arr off.(v) (off.(v + 1) - off.(v)) in
      Array.sort compare row;
      let prev = ref (-1) in
      Array.iter
        (fun w ->
          if w <> !prev then begin
            Intvec.push out w;
            prev := w
          end)
        row;
      new_off.(v + 1) <- Intvec.length out
    done;
    (new_off, Intvec.to_array out)

  let freeze ?inputs ?outputs b =
    let n = b.nv in
    let srcs = Intvec.to_array b.srcs and dsts = Intvec.to_array b.dsts in
    let succ_off0, succ0 = to_csr n srcs dsts in
    let succ_off, succ = dedup_rows n succ_off0 succ0 in
    (* Rebuild the (deduplicated) edge list to derive predecessors. *)
    let m = Array.length succ in
    let e_src = Array.make m 0 and e_dst = Array.make m 0 in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for j = succ_off.(u) to succ_off.(u + 1) - 1 do
        e_src.(!k) <- u;
        e_dst.(!k) <- succ.(j);
        incr k
      done
    done;
    let pred_off0, pred0 = to_csr n e_dst e_src in
    let pred_off, pred = dedup_rows n pred_off0 pred0 in
    check_acyclic n succ_off succ pred_off;
    let input_set = Bitset.create n and output_set = Bitset.create n in
    let tag what set = function
      | Some vs ->
          List.iter
            (fun v ->
              if v < 0 || v >= n then
                invalid_arg ("Cdag.Builder.freeze: " ^ what ^ " out of range");
              Bitset.add set v)
            vs
      | None ->
          (* Hong–Kung default: sources are inputs, sinks are outputs. *)
          for v = 0 to n - 1 do
            let deg =
              if what = "input" then pred_off.(v + 1) - pred_off.(v)
              else succ_off.(v + 1) - succ_off.(v)
            in
            if deg = 0 then Bitset.add set v
          done
    in
    tag "input" input_set inputs;
    tag "output" output_set outputs;
    let labels = Array.sub b.labels 0 n in
    { n; succ_off; succ; pred_off; pred; input_set; output_set; labels }
end
