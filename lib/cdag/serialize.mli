(** A small line-oriented text format for CDAGs, so that workloads can
    be saved, diffed and re-loaded by the CLI:

    {v
    cdag <n_vertices>
    i <v> ...        # input tags
    o <v> ...        # output tags
    e <u> <v>        # one edge per line
    l <v> <label>    # optional labels
    v}

    Lines starting with [#] and blank lines are ignored. *)

val to_string : Cdag.t -> string

val of_string : string -> (Cdag.t, string) result
(** Parse.  Never raises: a missing or duplicate header, a directive
    before the header, an out-of-range or dangling endpoint, a
    self-loop, a duplicate edge/tag/label, or a cyclic edge relation
    all come back as [Error] with the offending line number. *)

val to_file : string -> Cdag.t -> unit

val of_file : string -> (Cdag.t, string) result
(** {!of_string} on a file; unreadable or truncated files are [Error]
    too. *)

val equal_structure : Cdag.t -> Cdag.t -> bool
(** Same vertex count, edges and tags (labels ignored) — used by the
    round-trip tests. *)
