type vertex = int

type t = {
  n_vertices : int;
  iter_succ : vertex -> (vertex -> unit) -> unit;
  iter_pred : vertex -> (vertex -> unit) -> unit;
  is_input : vertex -> bool;
  is_output : vertex -> bool;
  label : vertex -> string;
}

let of_cdag g =
  {
    n_vertices = Cdag.n_vertices g;
    iter_succ = (fun v f -> Cdag.iter_succ g v f);
    iter_pred = (fun v f -> Cdag.iter_pred g v f);
    is_input = Cdag.is_input g;
    is_output = Cdag.is_output g;
    label = Cdag.label g;
  }

let out_degree t v =
  let d = ref 0 in
  t.iter_succ v (fun _ -> incr d);
  !d

let in_degree t v =
  let d = ref 0 in
  t.iter_pred v (fun _ -> incr d);
  !d

let n_edges t =
  let m = ref 0 in
  for v = 0 to t.n_vertices - 1 do
    t.iter_succ v (fun _ -> incr m)
  done;
  !m

let materialize t =
  let n = t.n_vertices in
  let b = Cdag.Builder.create ~hint:n () in
  for v = 0 to n - 1 do
    let lbl = t.label v in
    ignore (Cdag.Builder.add_vertex ~label:lbl b)
  done;
  for v = 0 to n - 1 do
    t.iter_succ v (fun w -> Cdag.Builder.add_edge b v w)
  done;
  let tagged pred =
    let out = ref [] in
    for v = n - 1 downto 0 do
      if pred v then out := v :: !out
    done;
    !out
  in
  Cdag.Builder.freeze ~inputs:(tagged t.is_input) ~outputs:(tagged t.is_output)
    b

(* Build an induced part from an ascending id array.  Membership is
   resolved through a hash table keyed by parent id, so the cost is
   proportional to the piece and its incident edges, never to
   [t.n_vertices]. *)
let induced t ids =
  let k = Array.length ids in
  let map = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace map v i) ids;
  let b = Cdag.Builder.create ~hint:k () in
  Array.iter (fun v -> ignore (Cdag.Builder.add_vertex ~label:(t.label v) b)) ids;
  Array.iteri
    (fun i v ->
      t.iter_succ v (fun w ->
          match Hashtbl.find_opt map w with
          | Some j -> Cdag.Builder.add_edge b i j
          | None -> ()))
    ids;
  let tag pred =
    let out = ref [] in
    for i = k - 1 downto 0 do
      if pred ids.(i) then out := i :: !out
    done;
    !out
  in
  let graph =
    Cdag.Builder.freeze ~inputs:(tag t.is_input) ~outputs:(tag t.is_output) b
  in
  let of_parent v =
    match Hashtbl.find_opt map v with
    | Some i -> Some i
    | None -> None
  in
  { Subgraph.graph; to_parent = ids; of_parent }

let window t ~lo ~hi =
  if lo < 0 || hi > t.n_vertices || lo > hi then
    invalid_arg "Implicit.window: bad range";
  induced t (Array.init (hi - lo) (fun i -> lo + i))

let window_of_set t vs =
  let ids = Array.of_list vs in
  Array.sort compare ids;
  Array.iter
    (fun v ->
      if v < 0 || v >= t.n_vertices then
        invalid_arg "Implicit.window_of_set: vertex out of range")
    ids;
  induced t ids

let check_monotone t =
  let ok = ref true in
  (try
     for v = 0 to t.n_vertices - 1 do
       t.iter_succ v (fun w -> if w <= v then raise Exit)
     done
   with Exit -> ok := false);
  !ok
