(** Computational directed acyclic graphs (CDAGs).

    A CDAG is the 4-tuple [C = (I, V, E, O)] of Definition 1 of the
    paper: a finite DAG whose vertices model operations and whose edges
    model the flow of values, together with a set [I] of vertices tagged
    as {e inputs} (initially resident in slow memory) and a set [O]
    tagged as {e outputs} (required in slow memory at the end).

    Following the red-blue-white (RBW) model of Section 3, the tagging
    is {e flexible}: a vertex without predecessors need not be an input,
    and a vertex without successors need not be an output.  Use
    {!Validate.hong_kung} to check the stricter Hong–Kung convention
    when needed.

    Graphs are built with a mutable {!Builder.t} and then {e frozen}
    into an immutable CSR (compressed sparse row) representation; all
    analyses run over the frozen form.  Vertex ids are dense integers
    [0 .. n_vertices-1] in creation order. *)

type vertex = int

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t

  val create : ?hint:int -> unit -> t
  (** Fresh builder; [hint] pre-sizes internal storage (the label table
      for [hint] vertices, the edge lists for [4 * hint] edges).  The
      hint is advisory: under-hinted builders grow all storage by
      amortized doubling, so construction stays linear even when the
      final size exceeds the hint by orders of magnitude. *)

  val add_vertex : ?label:string -> t -> vertex
  (** Append a vertex and return its id (ids are consecutive from 0). *)

  val add_edge : t -> vertex -> vertex -> unit
  (** [add_edge b u v] adds the dependence [u -> v].  Both endpoints
      must already exist; self-loops are rejected ([Invalid_argument]).
      Duplicate edges are coalesced at freeze time. *)

  val n_vertices : t -> int

  val freeze : ?inputs:vertex list -> ?outputs:vertex list -> t -> graph
  (** Produce the immutable graph.  When [inputs] (resp. [outputs]) is
      omitted, every vertex without predecessors (resp. successors) is
      tagged, i.e. the Hong–Kung convention.  Raises [Invalid_argument]
      if the edge relation has a cycle or a tag is out of range. *)
end

(** {1 Size and structure} *)

val n_vertices : t -> int

val n_edges : t -> int

val in_degree : t -> vertex -> int

val out_degree : t -> vertex -> int

val iter_succ : t -> vertex -> (vertex -> unit) -> unit
(** Apply to each immediate successor, in ascending id order. *)

val iter_pred : t -> vertex -> (vertex -> unit) -> unit

val fold_succ : t -> vertex -> ('a -> vertex -> 'a) -> 'a -> 'a

val fold_pred : t -> vertex -> ('a -> vertex -> 'a) -> 'a -> 'a

val succ_list : t -> vertex -> vertex list

val pred_list : t -> vertex -> vertex list

val iter_edges : t -> (vertex -> vertex -> unit) -> unit
(** Apply to each edge [(u, v)], grouped by source in ascending order. *)

val has_edge : t -> vertex -> vertex -> bool
(** Binary search over the successor row; O(log out-degree). *)

val label : t -> vertex -> string
(** The label given at construction, or ["v<id>"] when none was. *)

(** {1 Input/output tagging} *)

val is_input : t -> vertex -> bool

val is_output : t -> vertex -> bool

val inputs : t -> vertex list
(** Ascending ids of the tagged inputs (the set [I]). *)

val outputs : t -> vertex list

val n_inputs : t -> int

val n_outputs : t -> int

val n_compute : t -> int
(** [n_vertices - n_inputs]: the operation set [V - I] of the paper,
    i.e. the vertices that must fire with rule R3. *)

val retag : t -> inputs:vertex list -> outputs:vertex list -> t
(** Same DAG, different tagging — the (un)tagging transform of
    Theorem 3.  Shares the frozen adjacency arrays with the original. *)

(** {1 Whole-graph iteration} *)

val iter_vertices : t -> (vertex -> unit) -> unit

val fold_vertices : t -> ('a -> vertex -> 'a) -> 'a -> 'a

val sources : t -> vertex list
(** Vertices with no predecessors (whether or not tagged as inputs). *)

val sinks : t -> vertex list

(** {1 Pretty-printing} *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: vertex/edge/input/output counts. *)
