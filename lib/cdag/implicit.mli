(** Implicit CDAGs: the graph interface as functions, not arrays.

    A frozen {!Cdag.t} stores the whole CSR adjacency, which caps
    analyses near 10^6 vertices.  Regular CDAGs — stencils, butterflies,
    reduction trees, blocked linear algebra — have adjacency that is
    pure index arithmetic, so the graph can be described by its size
    and a handful of closures and never materialized.  An {!t} is
    exactly the read-only face of {!Cdag.t} ([n_vertices], successor /
    predecessor iteration, input/output predicates, labels) with every
    component a function; {!of_cdag} makes any frozen graph an
    instance, and {!materialize} / {!window} bridge back so the
    existing numeric engines keep working on whole graphs or on
    on-demand tiles.

    Vertex ids are dense integers [0 .. n_vertices-1], exactly as in
    {!Cdag}.  Generators in [Dmc_gen.Implicit_gen] additionally emit
    {e id-monotone} graphs (every edge goes from a lower id to a higher
    id), which is what lets streaming consumers sweep in id order with
    a bounded live window; {!check_monotone} verifies the property. *)

type vertex = int

type t = {
  n_vertices : int;
  iter_succ : vertex -> (vertex -> unit) -> unit;
      (** immediate successors, ascending id order *)
  iter_pred : vertex -> (vertex -> unit) -> unit;
  is_input : vertex -> bool;
  is_output : vertex -> bool;
  label : vertex -> string;
}

val of_cdag : Cdag.t -> t
(** Wrap a frozen graph; every component delegates to the CSR arrays. *)

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val n_edges : t -> int
(** Counted by iterating every successor row — O(V + E); for
    billion-vertex graphs prefer the generator's closed form. *)

val materialize : t -> Cdag.t
(** Rebuild the frozen CSR form (O(V + E) time and space).  The result
    has the same vertex ids, edges, tags and labels; materializing
    [of_cdag g] reproduces [g] exactly.  Raises [Invalid_argument] if
    the implicit graph is cyclic or an iterator steps out of range. *)

val window : t -> lo:vertex -> hi:vertex -> Subgraph.part
(** Materialize the induced sub-CDAG on the id range [\[lo, hi)]
    without touching any vertex outside it (edges are discovered from
    the range's own successor rows; cost is O(hi - lo + edges touching
    the range)).  Tagging follows Theorem 2: the window's inputs are
    [I ∩ \[lo, hi)] and its outputs [O ∩ \[lo, hi)], so per-window
    bounds sum soundly over disjoint windows.  [part.to_parent] maps
    window ids back to [lo ..]. *)

val window_of_set : t -> vertex list -> Subgraph.part
(** Like {!window} for an arbitrary vertex set (ascending ids assumed
    after an internal sort); the tile extractor for non-contiguous
    pieces such as an FFT rank band's butterfly groups. *)

val check_monotone : t -> bool
(** Whether every edge goes from a lower to a higher id — the property
    streaming consumers rely on.  O(V + E). *)
