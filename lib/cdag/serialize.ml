let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "cdag %d\n" (Cdag.n_vertices g));
  let dump_tags key vs =
    if vs <> [] then begin
      Buffer.add_string buf key;
      List.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) vs;
      Buffer.add_char buf '\n'
    end
  in
  dump_tags "i" (Cdag.inputs g);
  dump_tags "o" (Cdag.outputs g);
  Cdag.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v));
  Cdag.iter_vertices g (fun v ->
      let l = Cdag.label g v in
      if l <> "v" ^ string_of_int v then
        Buffer.add_string buf (Printf.sprintf "l %d %s\n" v l));
  Buffer.contents buf

(* Parsing is deliberately paranoid: the format is hand-editable, so
   every malformed construct — truncated header, out-of-range or
   dangling endpoint, duplicate edge/tag/label, self-loop, cyclic edge
   relation — must come back as [Error] with the offending line
   number, never as an exception. *)
let of_string text =
  let lines = String.split_on_char '\n' text in
  let exception Bad of string in
  let bad lineno fmt =
    Printf.ksprintf
      (fun msg -> raise (Bad (Printf.sprintf "line %d: %s" lineno msg)))
      fmt
  in
  try
    let header_line = ref 0 in
    let n_declared = ref (-1) in
    (* Everything is collected with its line number and validated after
       the scan, so range errors on forward references still point at
       the right line. *)
    let inputs = ref [] and outputs = ref [] in
    let labels = ref [] in
    let edges = ref [] in
    List.iteri
      (fun lineno0 line ->
        let lineno = lineno0 + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          let words =
            String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
          in
          let int_of w =
            match int_of_string_opt w with
            | Some i -> i
            | None -> bad lineno "not an integer: %s" w
          in
          let need_header () =
            if !n_declared < 0 then bad lineno "directive before the cdag header"
          in
          match words with
          | [ "cdag"; n ] ->
              if !n_declared >= 0 then
                bad lineno "duplicate cdag header (first on line %d)" !header_line;
              let n = int_of n in
              if n < 0 then bad lineno "negative vertex count";
              n_declared := n;
              header_line := lineno
          | "cdag" :: _ -> bad lineno "cdag header needs exactly one vertex count"
          | "i" :: vs ->
              need_header ();
              List.iter (fun w -> inputs := (lineno, int_of w) :: !inputs) vs
          | "o" :: vs ->
              need_header ();
              List.iter (fun w -> outputs := (lineno, int_of w) :: !outputs) vs
          | [ "e"; u; v ] ->
              need_header ();
              edges := (lineno, int_of u, int_of v) :: !edges
          | "e" :: _ -> bad lineno "edge needs exactly two endpoints"
          | "l" :: v :: (_ :: _ as rest) ->
              need_header ();
              labels := (lineno, int_of v, String.concat " " rest) :: !labels
          | [ "l" ] | [ "l"; _ ] -> bad lineno "label directive without a label"
          | _ -> bad lineno "unrecognized directive: %s" line)
      lines;
    if !n_declared < 0 then Error "missing cdag header"
    else begin
      let n = !n_declared in
      let check lineno v =
        if v < 0 || v >= n then
          bad lineno "vertex %d out of range (header declares %d vertices)" v n
      in
      let edges_in_order = List.rev !edges in
      let seen_edge = Hashtbl.create 64 in
      List.iter
        (fun (lineno, u, v) ->
          check lineno u;
          check lineno v;
          if u = v then bad lineno "self-loop on vertex %d" u;
          match Hashtbl.find_opt seen_edge (u, v) with
          | Some first ->
              bad lineno "duplicate edge %d -> %d (first on line %d)" u v first
          | None -> Hashtbl.add seen_edge (u, v) lineno)
        edges_in_order;
      let dedup_tags what tagged =
        let first = Hashtbl.create 16 in
        List.rev_map
          (fun (lineno, v) ->
            check lineno v;
            (match Hashtbl.find_opt first v with
            | Some fl ->
                bad lineno "duplicate %s tag on vertex %d (first on line %d)"
                  what v fl
            | None -> Hashtbl.add first v lineno);
            v)
          (List.rev tagged)
        |> List.rev
      in
      let inputs = dedup_tags "input" !inputs in
      let outputs = dedup_tags "output" !outputs in
      let label_of = Array.init n (fun v -> "v" ^ string_of_int v) in
      let labelled = Hashtbl.create 16 in
      List.iter
        (fun (lineno, v, l) ->
          check lineno v;
          (match Hashtbl.find_opt labelled v with
          | Some fl ->
              bad lineno "duplicate label for vertex %d (first on line %d)" v fl
          | None -> Hashtbl.add labelled v lineno);
          label_of.(v) <- l)
        (List.rev !labels);
      let b = Cdag.Builder.create ~hint:n () in
      for v = 0 to n - 1 do
        ignore (Cdag.Builder.add_vertex ~label:label_of.(v) b)
      done;
      List.iter (fun (_, u, v) -> Cdag.Builder.add_edge b u v) edges_in_order;
      match Cdag.Builder.freeze ~inputs ~outputs b with
      | g -> Ok g
      | exception Invalid_argument msg ->
          let mentions_cycle =
            let m = String.lowercase_ascii msg in
            let sub = "cycle" in
            let rec find i =
              i + String.length sub <= String.length m
              && (String.sub m i (String.length sub) = sub || find (i + 1))
            in
            find 0
          in
          if mentions_cycle then Error "declared edges form a cycle"
          else Error msg
    end
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> of_string text
      | exception End_of_file -> Error (path ^ ": truncated file")
      | exception Sys_error msg -> Error msg)

let equal_structure a b =
  Cdag.n_vertices a = Cdag.n_vertices b
  && Cdag.n_edges a = Cdag.n_edges b
  && Cdag.inputs a = Cdag.inputs b
  && Cdag.outputs a = Cdag.outputs b
  &&
  let ok = ref true in
  Cdag.iter_edges a (fun u v -> if not (Cdag.has_edge b u v) then ok := false);
  !ok
