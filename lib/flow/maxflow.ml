module Bitset = Dmc_util.Bitset
module Budget = Dmc_util.Budget
module Intvec = Dmc_util.Intvec

let tick = function None -> () | Some b -> Budget.tick b
let c_bfs = Dmc_obs.Counter.make "dinic.bfs_rounds"
let c_aug = Dmc_obs.Counter.make "dinic.augmenting_paths"
let h_path_len = Dmc_obs.Histogram.make "dinic.path_len"

(* Edges are stored in pairs: edge [2k] and its residual twin [2k+1].
   [cap] holds the residual capacity, so flow on edge e equals the
   residual capacity of its twin. *)
type t = {
  n : int;
  head : Intvec.t;      (* per edge: destination node *)
  cap : Intvec.t;       (* per edge: residual capacity *)
  next : Intvec.t;      (* per edge: next edge id out of the same node *)
  first : int array;    (* per node: first edge id, -1 when none *)
  mutable level : int array;
  mutable cursor : int array;
}

let infinite = max_int / 4

let create n =
  {
    n;
    head = Intvec.create ();
    cap = Intvec.create ();
    next = Intvec.create ();
    first = Array.make (max n 1) (-1);
    level = [||];
    cursor = [||];
  }

let n_nodes net = net.n

let push_edge net ~src ~dst ~cap =
  let id = Intvec.length net.head in
  Intvec.push net.head dst;
  Intvec.push net.cap cap;
  Intvec.push net.next net.first.(src);
  net.first.(src) <- id;
  id

let add_edge net ~src ~dst ~cap =
  if src < 0 || src >= net.n || dst < 0 || dst >= net.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let id = push_edge net ~src ~dst ~cap in
  ignore (push_edge net ~src:dst ~dst:src ~cap:0);
  id

let bfs ?budget net ~src ~dst =
  let level = Array.make net.n (-1) in
  level.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    tick budget;
    let e = ref net.first.(u) in
    while !e >= 0 do
      let v = Intvec.get net.head !e in
      if Intvec.get net.cap !e > 0 && level.(v) < 0 then begin
        level.(v) <- level.(u) + 1;
        Queue.add v queue
      end;
      e := Intvec.get net.next !e
    done
  done;
  net.level <- level;
  level.(dst) >= 0

let rec dfs ?budget net ~dst u pushed =
  if u = dst then pushed
  else begin
    let result = ref 0 in
    while !result = 0 && net.cursor.(u) >= 0 do
      tick budget;
      let e = net.cursor.(u) in
      let v = Intvec.get net.head e in
      let residual = Intvec.get net.cap e in
      if residual > 0 && net.level.(v) = net.level.(u) + 1 then begin
        let sent = dfs ?budget net ~dst v (min pushed residual) in
        if sent > 0 then begin
          Intvec.set net.cap e (residual - sent);
          Intvec.set net.cap (e lxor 1) (Intvec.get net.cap (e lxor 1) + sent);
          result := sent
        end
        else net.cursor.(u) <- Intvec.get net.next e
      end
      else net.cursor.(u) <- Intvec.get net.next e
    done;
    !result
  end

let max_flow ?budget net ~src ~dst =
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  let total = ref 0 in
  while bfs ?budget net ~src ~dst do
    Dmc_obs.Counter.incr c_bfs;
    net.cursor <- Array.copy net.first;
    let rec pump () =
      let sent = dfs ?budget net ~dst src infinite in
      if sent > 0 then begin
        Dmc_obs.Counter.incr c_aug;
        (* level.(dst) is the length of every augmenting path in this
           phase — Dinic only sends flow along level-respecting paths *)
        Dmc_obs.Histogram.observe h_path_len net.level.(dst);
        total := !total + sent;
        pump ()
      end
    in
    pump ()
  done;
  !total

let flow_on net id = Intvec.get net.cap (id lxor 1)

let iter_out net ~node f =
  let e = ref net.first.(node) in
  while !e >= 0 do
    if !e land 1 = 0 then f ~id:!e ~dst:(Intvec.get net.head !e);
    e := Intvec.get net.next !e
  done

let edge_dst net id = Intvec.get net.head id

let min_cut_source_side net ~src =
  let side = Bitset.create net.n in
  Bitset.add side src;
  let stack = Stack.create () in
  Stack.push src stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    let e = ref net.first.(u) in
    while !e >= 0 do
      let v = Intvec.get net.head !e in
      if Intvec.get net.cap !e > 0 && not (Bitset.mem side v) then begin
        Bitset.add side v;
        Stack.push v stack
      end;
      e := Intvec.get net.next !e
    done
  done;
  side
