(** Dinic's maximum-flow algorithm on integer-capacity networks.

    This is the engine behind the vertex-min-cut computation used by
    the wavefront lower bound (Section 3.3 of the paper).  Capacities
    are non-negative ints; use {!infinite} for "uncuttable" edges. *)

type t

val infinite : int
(** A capacity that no finite cut will saturate ([max_int / 4]). *)

val create : int -> t
(** [create n] is an empty network over nodes [0 .. n-1]. *)

val n_nodes : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed edge and its residual twin; returns an edge id for
    {!flow_on}.  Raises [Invalid_argument] on bad endpoints or negative
    capacity. *)

val max_flow : ?budget:Dmc_util.Budget.t -> t -> src:int -> dst:int -> int
(** Maximum [src]->[dst] flow.  May be called once per network state;
    flows accumulate, so build a fresh network per query.  Raises
    [Invalid_argument] if [src = dst].  [budget] is ticked once per
    BFS node visit and once per blocking-flow DFS step, so long phases
    on big networks raise [Dmc_util.Budget.Exhausted] promptly. *)

val flow_on : t -> int -> int
(** Flow currently routed through the edge with the given id. *)

val min_cut_source_side : t -> src:int -> Dmc_util.Bitset.t
(** After {!max_flow}: the set of nodes reachable from [src] in the
    residual network.  Edges leaving this set form a minimum cut. *)

val iter_out : t -> node:int -> (id:int -> dst:int -> unit) -> unit
(** Iterate the {e forward} edges (the ones created by {!add_edge},
    not their residual twins) leaving a node, with their ids — the raw
    material for flow decomposition. *)

val edge_dst : t -> int -> int
(** Destination node of an edge id. *)
