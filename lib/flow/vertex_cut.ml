module Bitset = Dmc_util.Bitset
module Budget = Dmc_util.Budget
module Cdag = Dmc_cdag.Cdag

type result = {
  size : int;
  cut : Cdag.vertex list;
  source_side : Bitset.t;
}

(* Node numbering in the split network: v_in = 2v, v_out = 2v+1,
   super-source = 2n, super-sink = 2n+1. *)
let v_in v = 2 * v
let v_out v = (2 * v) + 1

let min_vertex_cut ?budget g ~from_set ~to_set ?(uncuttable = []) () =
  if from_set = [] || to_set = [] then
    invalid_arg "Vertex_cut.min_vertex_cut: empty terminal set";
  let n = Cdag.n_vertices g in
  let in_from = Bitset.of_list n from_set and in_to = Bitset.of_list n to_set in
  if not (Bitset.is_empty (Bitset.inter in_from in_to)) then
    invalid_arg "Vertex_cut.min_vertex_cut: terminal sets intersect";
  let hard = Bitset.of_list n uncuttable in
  let net = Maxflow.create ((2 * n) + 2) in
  let src = 2 * n and dst = (2 * n) + 1 in
  let split_edge = Array.make n (-1) in
  for v = 0 to n - 1 do
    let cap = if Bitset.mem hard v then Maxflow.infinite else 1 in
    split_edge.(v) <- Maxflow.add_edge net ~src:(v_in v) ~dst:(v_out v) ~cap
  done;
  Cdag.iter_edges g (fun u v ->
      ignore (Maxflow.add_edge net ~src:(v_out u) ~dst:(v_in v) ~cap:Maxflow.infinite));
  List.iter
    (fun v -> ignore (Maxflow.add_edge net ~src ~dst:(v_in v) ~cap:Maxflow.infinite))
    from_set;
  List.iter
    (fun v -> ignore (Maxflow.add_edge net ~src:(v_out v) ~dst ~cap:Maxflow.infinite))
    to_set;
  let size = Maxflow.max_flow ?budget net ~src ~dst in
  let residual_side = Maxflow.min_cut_source_side net ~src in
  (* A vertex is in the cut when its split edge crosses the residual
     boundary: v_in reachable, v_out not. *)
  let cut = ref [] in
  for v = n - 1 downto 0 do
    if Bitset.mem residual_side (v_in v) && not (Bitset.mem residual_side (v_out v))
    then cut := v :: !cut
  done;
  let source_side = Bitset.create n in
  for v = 0 to n - 1 do
    if Bitset.mem residual_side (v_in v) then Bitset.add source_side v
  done;
  { size; cut = !cut; source_side }

let path_witness ?budget g ~from_set ~to_set ?(uncuttable = []) () =
  if from_set = [] || to_set = [] then
    invalid_arg "Vertex_cut.path_witness: empty terminal set";
  let n = Cdag.n_vertices g in
  let in_from = Bitset.of_list n from_set and in_to = Bitset.of_list n to_set in
  if not (Bitset.is_empty (Bitset.inter in_from in_to)) then
    invalid_arg "Vertex_cut.path_witness: terminal sets intersect";
  let hard = Bitset.of_list n uncuttable in
  let net = Maxflow.create ((2 * n) + 2) in
  let src = 2 * n and dst = (2 * n) + 1 in
  for v = 0 to n - 1 do
    let cap = if Bitset.mem hard v then Maxflow.infinite else 1 in
    ignore (Maxflow.add_edge net ~src:(v_in v) ~dst:(v_out v) ~cap)
  done;
  Cdag.iter_edges g (fun u v ->
      ignore (Maxflow.add_edge net ~src:(v_out u) ~dst:(v_in v) ~cap:Maxflow.infinite));
  List.iter
    (fun v -> ignore (Maxflow.add_edge net ~src ~dst:(v_in v) ~cap:1))
    from_set;
  List.iter
    (fun v -> ignore (Maxflow.add_edge net ~src:(v_out v) ~dst ~cap:Maxflow.infinite))
    to_set;
  let size = Maxflow.max_flow ?budget net ~src ~dst in
  (* Decompose the flow into unit paths: walk from the super-source
     along edges with unconsumed flow, consuming one unit per step. *)
  let consumed = Hashtbl.create 64 in
  let remaining id =
    Maxflow.flow_on net id
    - (match Hashtbl.find_opt consumed id with Some c -> c | None -> 0)
  in
  let consume id =
    Hashtbl.replace consumed id
      (1 + match Hashtbl.find_opt consumed id with Some c -> c | None -> 0)
  in
  let next_hop node =
    let found = ref None in
    Maxflow.iter_out net ~node (fun ~id ~dst ->
        if !found = None && remaining id > 0 then found := Some (id, dst));
    !found
  in
  let extract () =
    let rec walk node acc =
      if node = dst then List.rev acc
      else
        match next_hop node with
        | None ->
            Budget.internal_error ~where:"Vertex_cut.path_witness"
              "flow decomposition stuck at node %d (n=%d, flow=%d)" node n size
        | Some (id, next) ->
            consume id;
            (* record the CDAG vertex when crossing a split edge *)
            let acc =
              if node land 1 = 0 && node < 2 * n && next = node + 1 then
                (node / 2) :: acc
              else acc
            in
            walk next acc
    in
    walk src []
  in
  List.init size (fun _ -> extract ())

let disjoint_paths ?budget g ~src ~dst =
  if src = dst then invalid_arg "Vertex_cut.disjoint_paths: src = dst";
  let n = Cdag.n_vertices g in
  let net = Maxflow.create (2 * n) in
  for v = 0 to n - 1 do
    let cap = if v = src || v = dst then Maxflow.infinite else 1 in
    ignore (Maxflow.add_edge net ~src:(v_in v) ~dst:(v_out v) ~cap)
  done;
  Cdag.iter_edges g (fun u v ->
      ignore (Maxflow.add_edge net ~src:(v_out u) ~dst:(v_in v) ~cap:Maxflow.infinite));
  Maxflow.max_flow ?budget net ~src:(v_out src) ~dst:(v_in dst)
