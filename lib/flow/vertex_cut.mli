module Cdag := Dmc_cdag.Cdag

(** Minimum vertex cuts in CDAGs via node splitting.

    [min_vertex_cut g ~from_set ~to_set ~uncuttable] computes the
    smallest set [W] of vertices, disjoint from [uncuttable], such that
    every directed path from a vertex of [from_set] to a vertex of
    [to_set] passes through some member of [W].  Members of [from_set]
    themselves may be chosen for [W] unless listed uncuttable.

    Implementation: the standard reduction where each vertex [v] is
    split into [v_in -> v_out] with capacity 1 (or infinite when
    uncuttable), every CDAG edge gets infinite capacity, a super-source
    feeds every [from_set] vertex's [v_in], and every [to_set] vertex's
    [v_out] drains to a super-sink.  Menger's theorem makes the max flow
    equal the min cut, and the saturated split edges on the source-side
    boundary of the residual graph name the cut vertices. *)

type result = {
  size : int;                    (** [|W|], the max-flow value *)
  cut : Cdag.vertex list;        (** the cut vertices, ascending *)
  source_side : Dmc_util.Bitset.t;
      (** vertices whose [v_in] is reachable from the super-source in
          the residual network: the "S side" of the induced convex
          partition *)
}

val min_vertex_cut :
  ?budget:Dmc_util.Budget.t ->
  Cdag.t ->
  from_set:Cdag.vertex list ->
  to_set:Cdag.vertex list ->
  ?uncuttable:Cdag.vertex list ->
  unit ->
  result
(** Raises [Invalid_argument] when [from_set] and [to_set] intersect or
    either is empty.  The result size is guaranteed finite when
    [to_set] vertices are uncuttable but every path from [from_set]
    contains some cuttable vertex; if not, [size] may be
    {!Maxflow.infinite}-scaled (treat as "no finite cut"). *)

val path_witness :
  ?budget:Dmc_util.Budget.t ->
  Cdag.t ->
  from_set:Cdag.vertex list ->
  to_set:Cdag.vertex list ->
  ?uncuttable:Cdag.vertex list ->
  unit ->
  Cdag.vertex list list
(** A {e witness} for {!min_vertex_cut}: [size]-many directed paths
    from [from_set] to [to_set], pairwise vertex-disjoint except on
    [uncuttable] vertices, obtained by decomposing the maximum flow.
    By Menger's theorem their existence proves the cut cannot be
    smaller — a machine-checkable lower-bound certificate.  Each path
    is listed source-first.  Raises [Dmc_util.Budget.Internal_error]
    (with the stuck node and flow value) if the decomposition cannot
    make progress — an invariant violation, not a resource
    condition. *)

val disjoint_paths :
  ?budget:Dmc_util.Budget.t -> Cdag.t -> src:Cdag.vertex -> dst:Cdag.vertex -> int
(** Maximum number of internally vertex-disjoint directed paths from
    [src] to [dst] (endpoints excluded from the disjointness
    requirement).  Used by the CG/GMRES wavefront arguments, which rest
    on "disjoint paths from the predecessors to the descendants". *)
