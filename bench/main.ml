(* The benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe                 -- everything below
     dune exec bench/main.exe table1          -- Table 1
     dune exec bench/main.exe sec3            -- Section-3 composite sweep
     dune exec bench/main.exe cg              -- CG analysis (Sec 5.2)
     dune exec bench/main.exe gmres           -- GMRES analysis (Sec 5.3)
     dune exec bench/main.exe jacobi          -- Jacobi analysis (Sec 5.4)
     dune exec bench/main.exe validate        -- lower bounds vs optimal games
     dune exec bench/main.exe sim             -- simulator cross-checks
     dune exec bench/main.exe ablation        -- design-choice ablations
     dune exec bench/main.exe bench           -- bechamel micro-benchmarks
     dune exec bench/main.exe bench --json F  -- also write baseline JSON

   Every experiment prints the rows the paper reports (or the
   validation table establishing the corresponding claim) and an
   [ok]/[FAIL] line per internal consistency check. *)

module Table = Dmc_util.Table

(* ------------------------------------------------------------------ *)
(* Ablation 1: exact vs sampled wavefront (DESIGN.md decision 1)       *)

let ablation_wavefront () =
  Printf.printf "\n== Ablation: exact vs sampled min-cut wavefront ==\n\n";
  let t = Table.create ~headers:[ "CDAG"; "|V|"; "wmax exact"; "sampled(8)"; "sampled(32)"; "exact ms"; "sampled(32) ms" ] in
  let cases =
    [
      ("jacobi1d-24x8", (Dmc_gen.Stencil.jacobi_1d ~n:24 ~steps:8).graph);
      ("cg-3x3x2", (Dmc_gen.Solver.cg ~dims:[ 3; 3 ] ~iters:2).graph);
      ("fft32", Dmc_gen.Fft.butterfly 5);
      ("matmul4", Dmc_gen.Linalg.matmul 4);
    ]
  in
  List.iter
    (fun (name, g) ->
      let stripped, _ = Dmc_cdag.Subgraph.drop_inputs g in
      let g' = stripped.Dmc_cdag.Subgraph.graph in
      let time f =
        let t0 = Unix.gettimeofday () in
        let x = f () in
        (x, (Unix.gettimeofday () -. t0) *. 1000.0)
      in
      let exact, t_exact = time (fun () -> Dmc_core.Wavefront.wmax_exact g') in
      let s8, _ =
        time (fun () ->
            Dmc_core.Wavefront.wmax_sampled (Dmc_util.Rng.create 1) g' ~samples:8)
      in
      let s32, t_s32 =
        time (fun () ->
            Dmc_core.Wavefront.wmax_sampled (Dmc_util.Rng.create 1) g' ~samples:32)
      in
      Table.add_row t
        [
          name;
          string_of_int (Dmc_cdag.Cdag.n_vertices g');
          string_of_int exact;
          string_of_int s8;
          string_of_int s32;
          Printf.sprintf "%.1f" t_exact;
          Printf.sprintf "%.1f" t_s32;
        ])
    cases;
  Table.print t;
  true

(* ------------------------------------------------------------------ *)
(* Ablation 2: eviction policy (DESIGN.md decision 2)                  *)

let ablation_policy () =
  Printf.printf "\n== Ablation: Belady vs LRU spilling ==\n\n";
  let t = Table.create ~headers:[ "CDAG"; "S"; "Belady I/O"; "LRU I/O"; "LRU/Belady" ] in
  let cases =
    [
      ("fft64", Dmc_gen.Fft.butterfly 6, 8);
      ("matmul6", Dmc_gen.Linalg.matmul 6, 12);
      ("jacobi2d-8x4", (Dmc_gen.Stencil.jacobi_2d ~shape:Dmc_gen.Stencil.Star ~n:8 ~steps:4 ()).graph, 20);
      ("tree128", Dmc_gen.Shapes.reduction_tree 128, 4);
      ("cg-4x4x2", (Dmc_gen.Solver.cg ~dims:[ 4; 4 ] ~iters:2).graph, 16);
    ]
  in
  let ok = ref true in
  List.iter
    (fun (name, g, s) ->
      let belady = Dmc_core.Strategy.io ~policy:Dmc_core.Strategy.Belady g ~s in
      let lru = Dmc_core.Strategy.io ~policy:Dmc_core.Strategy.Lru g ~s in
      if belady > lru then ok := false;
      Table.add_row t
        [
          name;
          string_of_int s;
          string_of_int belady;
          string_of_int lru;
          Printf.sprintf "%.2fx" (float_of_int lru /. float_of_int belady);
        ])
    cases;
  Table.print t;
  Printf.printf "  [%s] Belady never worse than LRU on these workloads\n"
    (if !ok then "ok" else "FAIL");
  !ok

(* ------------------------------------------------------------------ *)
(* Ablation 3: stencil tile size                                       *)

let ablation_tile () =
  Printf.printf "\n== Ablation: skewed-tile size vs I/O (1D Jacobi, n=96 T=24, S=36) ==\n\n";
  let st = Dmc_gen.Stencil.jacobi_1d ~n:96 ~steps:24 in
  let s = 36 in
  let t = Table.create ~headers:[ "tile"; "measured I/O"; "vs Theorem-10 LB" ] in
  let lb = Dmc_core.Analytic.jacobi_lb ~d:1 ~n:96 ~steps:24 ~s ~p:1 in
  List.iter
    (fun tile ->
      let order = Dmc_gen.Stencil.skewed_order st ~tile in
      let io = Dmc_core.Strategy.io ~order st.Dmc_gen.Stencil.graph ~s in
      Table.add_row t
        [ string_of_int tile; string_of_int io; Printf.sprintf "%.1fx" (float_of_int io /. lb) ])
    [ 2; 4; 8; 12; 16; 24; 32 ];
  Table.print t;
  Printf.printf "  Theorem-10 lower bound: %.1f words\n" lb;
  true

(* ------------------------------------------------------------------ *)
(* Ablation 4: decomposition granularity on CG (DESIGN.md decision 3)  *)

let ablation_decomposition () =
  Printf.printf "\n== Ablation: whole-CDAG wavefront vs per-iteration decomposition (CG) ==\n\n";
  let t =
    Table.create
      ~headers:[ "iters"; "whole-graph LB"; "decomposed LB"; "Belady UB"; "gain" ]
  in
  let ok = ref true in
  List.iter
    (fun iters ->
      let s = 16 in
      let check = Dmc_analysis.Cg_analysis.structure ~dims:[ 3; 3 ] ~iters ~s () in
      let whole =
        Dmc_core.Wavefront.lower_bound
          (Dmc_gen.Solver.cg ~dims:[ 3; 3 ] ~iters).Dmc_gen.Solver.graph ~s
      in
      if check.Dmc_analysis.Cg_analysis.decomposed_lb > check.Dmc_analysis.Cg_analysis.belady_ub
      then ok := false;
      Table.add_row t
        [
          string_of_int iters;
          string_of_int whole;
          string_of_int check.Dmc_analysis.Cg_analysis.decomposed_lb;
          string_of_int check.Dmc_analysis.Cg_analysis.belady_ub;
          Printf.sprintf "%.2fx"
            (float_of_int check.Dmc_analysis.Cg_analysis.decomposed_lb
            /. float_of_int (max 1 whole));
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t;
  Printf.printf
    "  The per-iteration bound grows linearly with T while the whole-graph\n\
    \  wavefront saturates -- the reason Section 3.2 exists.\n";
  !ok

(* ------------------------------------------------------------------ *)
(* Ablation 5: inclusive vs exclusive hierarchies (Sec 4.1 remark)     *)

let ablation_cache_policy () =
  Printf.printf "\n== Ablation: inclusive vs exclusive hierarchy (memory-boundary words) ==\n\n";
  let t = Table.create ~headers:[ "CDAG"; "caps"; "inclusive"; "exclusive"; "excl/incl" ] in
  let cases =
    [
      (* capacities chosen so the working set falls between S2 and
         S1 + S2: that window is where exclusivity's extra aggregate
         capacity pays *)
      ("jacobi1d-32x8", (Dmc_gen.Stencil.jacobi_1d ~n:32 ~steps:8).graph, [| 12; 60 |]);
      ("fft32", Dmc_gen.Fft.butterfly 5, [| 12; 60 |]);
      ("matmul6", Dmc_gen.Linalg.matmul 6, [| 16; 70 |]);
      ("tree64 (streaming)", Dmc_gen.Shapes.reduction_tree 64, [| 4; 12 |]);
    ]
  in
  List.iter
    (fun (name, g, caps) ->
      let order = Dmc_core.Strategy.default_order g in
      let run policy =
        let h = Dmc_sim.Hier_sim.create ~policy ~capacities:caps () in
        Array.iter
          (fun v ->
            Dmc_cdag.Cdag.iter_pred g v (fun u -> Dmc_sim.Hier_sim.read h u);
            Dmc_sim.Hier_sim.write h v)
          order;
        Dmc_sim.Hier_sim.flush h;
        (Dmc_sim.Hier_sim.traffic h).(1)
      in
      let inc = run Dmc_sim.Hier_sim.Inclusive in
      let exc = run Dmc_sim.Hier_sim.Exclusive in
      Table.add_row t
        [
          name;
          Printf.sprintf "%d/%d" caps.(0) caps.(1);
          string_of_int inc;
          string_of_int exc;
          Printf.sprintf "%.2fx" (float_of_int exc /. float_of_int inc);
        ])
    cases;
  Table.print t;
  Printf.printf
    "  For these dataflow workloads the choice barely moves the needle (<= 3%%):\n\
    \  freshly produced values are dirty and migrate outward under either policy.\n\
    \  This is why Sec 4.1 can treat the two interchangeably -- the bounds only\n\
    \  see the effective capacity of the two-level reduction.\n";
  true

(* ------------------------------------------------------------------ *)
(* Ablation 6: execution order (the scheduler knob)                    *)

let ablation_order () =
  Printf.printf "\n== Ablation: execution order under the same Belady policy ==\n\n";
  let t = Table.create ~headers:[ "CDAG"; "S"; "breadth-first"; "depth-first"; "structured" ] in
  let mm = Dmc_gen.Linalg.matmul_indexed 6 in
  let st = Dmc_gen.Stencil.jacobi_1d ~n:64 ~steps:16 in
  let fft_k = 6 in
  let fft = Dmc_gen.Fft.butterfly fft_k in
  let cases =
    [
      ("matmul6", mm.Dmc_gen.Linalg.mm_graph, 14,
       Some (Dmc_gen.Linalg.blocked_matmul_order mm ~block:2));
      ("jacobi1d-64x16", st.Dmc_gen.Stencil.graph, 18,
       Some (Dmc_gen.Stencil.skewed_order st ~tile:6));
      ("fft64", fft, 18, Some (Dmc_gen.Fft.blocked_order ~k:fft_k ~group_bits:3));
      ("tree128", Dmc_gen.Shapes.reduction_tree 128, 4, None);
      ("lu8", (Dmc_gen.Linalg.lu_factor 8).Dmc_gen.Linalg.lu_graph, 12, None);
    ]
  in
  let ok = ref true in
  List.iter
    (fun (name, g, s, structured) ->
      let bfs = Dmc_core.Strategy.io g ~s in
      let dfs = Dmc_core.Strategy.io ~order:(Dmc_core.Strategy.dfs_order g) g ~s in
      let st_io =
        Option.map (fun order -> Dmc_core.Strategy.io ~order g ~s) structured
      in
      (match st_io with
      | Some x -> if x > bfs && x > dfs then ok := false
      | None -> ());
      Table.add_row t
        [
          name;
          string_of_int s;
          string_of_int bfs;
          string_of_int dfs;
          (match st_io with Some x -> string_of_int x | None -> "-");
        ])
    cases;
  Table.print t;
  Printf.printf
    "  [%s] the workload-specific order is never the worst of the three\n"
    (if !ok then "ok" else "FAIL");
  !ok

let ablation () =
  let a = ablation_wavefront () in
  let b = ablation_policy () in
  let c = ablation_tile () in
  let d = ablation_decomposition () in
  let e = ablation_cache_policy () in
  let f = ablation_order () in
  a && b && c && d && e && f

(* ------------------------------------------------------------------ *)
(* Scale demonstration: the engines on 10k-vertex CDAGs               *)

let scale () =
  Printf.printf "\n== Scale: the engines on larger CDAGs ==\n\n";
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let t = Table.create
      ~headers:[ "CDAG"; "|V|"; "|E|"; "sampled-wavefront LB"; "Belady UB"; "LB s"; "UB s" ]
  in
  let ok = ref true in
  List.iter
    (fun (name, g, s) ->
      let lb, t_lb = time (fun () -> Dmc_core.Wavefront.lower_bound g ~s) in
      let ub, t_ub = time (fun () -> Dmc_core.Strategy.io g ~s) in
      if lb > ub then ok := false;
      Table.add_row t
        [
          name;
          Table.fmt_int (Dmc_cdag.Cdag.n_vertices g);
          Table.fmt_int (Dmc_cdag.Cdag.n_edges g);
          string_of_int lb;
          string_of_int ub;
          Printf.sprintf "%.2f" t_lb;
          Printf.sprintf "%.2f" t_ub;
        ])
    [
      ("cg 6^3 x 4", (Dmc_gen.Solver.cg ~dims:[ 6; 6; 6 ] ~iters:4).graph, 64);
      ("jacobi2d 32x16", (Dmc_gen.Stencil.jacobi_2d ~shape:Dmc_gen.Stencil.Star ~n:32 ~steps:16 ()).graph, 128);
      ("fft 2048", Dmc_gen.Fft.butterfly 11, 66);
      ("matmul 16", Dmc_gen.Linalg.matmul 16, 96);
      ("multigrid 129 L4 c2", (Dmc_gen.Multigrid.v_cycle ~dims:[ 129 ] ~levels:4 ~cycles:2 ()).graph, 24);
    ];
  Table.print t;
  Printf.printf "  [%s] every sampled bound below its measured execution\n"
    (if !ok then "ok" else "FAIL");
  !ok

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the engines                            *)

let json_out = ref None

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n== Micro-benchmarks (bechamel, monotonic clock) ==\n\n";
  let cg = Dmc_gen.Solver.cg ~dims:[ 3; 3 ] ~iters:2 in
  let jac = Dmc_gen.Stencil.jacobi_1d ~n:32 ~steps:8 in
  let tree = Dmc_gen.Shapes.reduction_tree 8 in
  let fft = Dmc_gen.Fft.butterfly 5 in
  let mm = Dmc_gen.Linalg.matmul_indexed 4 in
  let moves = Dmc_core.Strategy.schedule jac.Dmc_gen.Stencil.graph ~s:12 in
  (* Each case is a plain thunk so the same closure can be staged for
     bechamel and replayed once under a span for the JSON baseline. *)
  let keep f () = ignore (Sys.opaque_identity (f ())) in
  let cases =
    [
      ( "wavefront-mincut-cg",
        keep (fun () ->
            Dmc_core.Wavefront.min_wavefront cg.Dmc_gen.Solver.graph
              cg.Dmc_gen.Solver.iterations.(1).Dmc_gen.Solver.a_scalar) );
      ( "belady-schedule-jacobi",
        keep (fun () -> Dmc_core.Strategy.io jac.Dmc_gen.Stencil.graph ~s:12) );
      ( "rbw-replay-jacobi",
        keep (fun () ->
            Dmc_core.Rbw_game.io_of jac.Dmc_gen.Stencil.graph ~s:12 moves) );
      ( "optimal-search-diamond3x3",
        (let d = Dmc_gen.Shapes.diamond ~rows:3 ~cols:3 in
         keep (fun () -> Dmc_core.Optimal.rbw_io d ~s:4)) );
      ( "partition-of-game-fft32",
        keep (fun () ->
            let mv = Dmc_core.Strategy.schedule fft ~s:6 in
            Dmc_core.Spartition.of_game fft ~s:6 mv) );
      ( "simulator-run-matmul4",
        keep (fun () ->
            Dmc_sim.Exec.run mm.Dmc_gen.Linalg.mm_graph
              ~order:(Dmc_gen.Linalg.blocked_matmul_order mm ~block:2)
              (Dmc_sim.Exec.sequential ~capacities:[| 12; 4096 |])) );
      ( "cdag-build-jacobi2d-16x4",
        keep (fun () ->
            Dmc_gen.Stencil.jacobi_2d ~shape:Dmc_gen.Stencil.Star ~n:16 ~steps:4 ()) );
      ( "witness-extract-verify-thomas32",
        (let th = Dmc_gen.Solver.thomas ~n:32 in
         let g = th.Dmc_gen.Solver.th_graph in
         let x = th.Dmc_gen.Solver.forward.(31) in
         keep (fun () ->
             let w = Dmc_core.Wavefront.witness g x in
             Dmc_core.Wavefront.verify_witness g w)) );
      ( "span-search-tree8",
        keep (fun () -> Dmc_core.Span.s_span tree ~s:6) );
      ( "sim-game-synthesis-fft32",
        keep (fun () ->
            Dmc_sim.Sim_game.of_execution fft
              ~order:(Dmc_core.Strategy.default_order fft) ~s:8) );
      ( "mp-schedule-jacobi-p4",
        keep (fun () -> Dmc_core.Strategy.mp_io jac.Dmc_gen.Stencil.graph ~p:4 ~s:6) );
      ( "pc-schedule-tree8",
        keep (fun () -> Dmc_core.Strategy.pc_io tree ~s:4) );
      ( "mp-comm-lb-fft32-p4",
        keep (fun () -> Dmc_core.Mp_bounds.row fft ~p:4 ~s:6 "mp-comm-lb") );
      ( "serve-cache-lru-churn",
        keep (fun () ->
            (* The daemon's result cache under deterministic churn: 96
               distinct keys through a 64-entry LRU, then one re-read
               pass.  Drives only serve.cache.* counters and gauges —
               32 evictions, 64 hits, 32 misses every run — so the
               baseline diff can gate on them like any work metric.
               The closing gauges mirror the live daemon's exposition:
               hit ratio from the counters, queue depth as the misses
               a daemon would queue to recompute. *)
            let cache = Dmc_serve.Result_cache.create ~capacity:64 () in
            for i = 0 to 95 do
              Dmc_serve.Result_cache.add cache (string_of_int i)
                (Dmc_util.Json.Int i)
            done;
            let hits = ref 0 in
            for i = 0 to 95 do
              match Dmc_serve.Result_cache.find cache (string_of_int i) with
              | Some _ -> incr hits
              | None -> ()
            done;
            let module R = Dmc_obs.Registry in
            let h = (R.counter "serve.cache.hit").R.c_value in
            let m = (R.counter "serve.cache.miss").R.c_value in
            let total = h + m in
            Dmc_obs.Gauge.set
              (Dmc_obs.Gauge.make "serve.cache.hit_ratio")
              (if total = 0 then 0.
               else float_of_int h /. float_of_int total);
            Dmc_obs.Gauge.set
              (Dmc_obs.Gauge.make "serve.queue.depth")
              (float_of_int (96 - !hits));
            !hits) );
      ( "cdag-build-1m-underhinted",
        keep (fun () ->
            (* a million-vertex chain through a 16-slot hint: the
               amortized-doubling growth path from first push to
               freeze, tracking the materialization cost the implicit
               layer avoids *)
            let b = Dmc_cdag.Cdag.Builder.create ~hint:16 () in
            let n = 1_000_000 in
            let first = Dmc_cdag.Cdag.Builder.add_vertex b in
            let prev = ref first in
            for _ = 2 to n do
              let v = Dmc_cdag.Cdag.Builder.add_vertex b in
              Dmc_cdag.Cdag.Builder.add_edge b !prev v;
              prev := v
            done;
            Dmc_cdag.Cdag.Builder.freeze b) );
      ( "implicit-materialize-window-1m",
        (let imp = Dmc_gen.Implicit_gen.jacobi_1d ~n:125_000 ~steps:7 in
         keep (fun () ->
             (* a 64k-vertex window out of a million-vertex implicit
               jacobi: the tile-sized bridge the symbolic engine and
               the streaming sweeps pay per window *)
             Dmc_cdag.Implicit.window imp ~lo:500_000 ~hi:565_536)) );
      ( "symbolic-parse-eval",
        keep (fun () ->
            match Dmc_symbolic.Expr.parse "n^d * T / (4 * P * (2 * S)^(1 / d))" with
            | Ok e ->
                Dmc_symbolic.Expr.eval
                  ~env:[ ("n", 64.0); ("d", 2.0); ("T", 8.0); ("P", 4.0); ("S", 256.0) ]
                  e
            | Error _ -> 0.0) );
    ]
  in
  let tests =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) cases
  in
  let grouped = Test.make_grouped ~name:"dmc" tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Table.create ~headers:[ "benchmark"; "ns/run"; "r^2" ] in
  Table.set_align t [ Table.Left; Table.Right; Table.Right ];
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Some x
        | _ -> None
      in
      let r2 = Analyze.OLS.r_square ols_result in
      rows := (name, est, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (n, e, r) ->
      Table.add_row t
        [
          n;
          (match e with Some x -> Printf.sprintf "%.0f" x | None -> "-");
          (match r with Some x -> Printf.sprintf "%.4f" x | None -> "-");
        ])
    rows;
  Table.print t;
  (* Baseline JSON: the bechamel estimates plus a counter snapshot from
     one instrumented pass over the same closures, so future PRs can
     diff both wall-clock and algorithmic work against this file. *)
  (match !json_out with
  | None -> ()
  | Some path ->
      let module J = Dmc_util.Json in
      Dmc_obs.Registry.reset ();
      Dmc_obs.Registry.set_enabled true;
      List.iter
        (fun (name, fn) -> Dmc_obs.Span.with_ ("bench." ^ name) fn)
        cases;
      Dmc_obs.Registry.set_enabled false;
      let benchmarks =
        List.map
          (fun (n, e, r) ->
            J.Obj
              [
                ("name", J.String n);
                ("ns_per_run", match e with Some x -> J.Float x | None -> J.Null);
                ("r_square", match r with Some x -> J.Float x | None -> J.Null);
              ])
          rows
      in
      Dmc_util.Checkpoint.write path
        (J.Obj
           [
             ("kind", J.String "dmc-bench-baseline");
             ("meta", Dmc_obs.Baseline.meta ~argv:Sys.argv ());
             ("benchmarks", J.List benchmarks);
             ("profile", Dmc_obs.Export.to_json ());
           ]);
      Printf.printf "  wrote %s\n" path);
  true

(* ------------------------------------------------------------------ *)

let registry =
  Dmc_analysis.Report.names
  @ [ ("ablation", ablation); ("scale", scale); ("bench", micro_benchmarks) ]

let () =
  let rec strip_json acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
        json_out := Some path;
        strip_json acc rest
    | a :: rest -> strip_json (a :: acc) rest
  in
  let args = strip_json [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with
    | [] -> registry
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n registry with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s (known: %s)\n" n
                  (String.concat ", " (List.map fst registry));
                exit 2)
          names
  in
  let ok = List.fold_left (fun acc (_, f) -> f () && acc) true selected in
  Printf.printf "\nOVERALL: %s\n" (if ok then "ALL CHECKS PASSED" else "SOME CHECKS FAILED");
  if not ok then exit 1
