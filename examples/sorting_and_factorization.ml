(* The wider I/O-complexity canon under one roof.

   Section 6 of the paper situates its framework among the classics:
   Aggarwal-Vitter's sorting bounds, the FFT results of Hong-Kung and
   Savage/Ranjan, and the dense-factorization bounds of Demmel et al.
   Every one of those workloads is a CDAG, so every one of them runs
   through this library's engines unchanged:

   - Batcher's bitonic sorting network and the FFT butterfly share the
     n-disjoint-lines structure and the log-S pass behaviour;
   - LU and Cholesky live in matrix multiplication's n^3/sqrt(S)
     regime;
   - the Thomas tridiagonal solve shows the opposite extreme: a
     working-set cliff (all forward values pinned at the turn) with a
     Menger witness to prove it.

   Run with:  dune exec examples/sorting_and_factorization.exe *)

module Cdag = Dmc_cdag.Cdag
module Table = Dmc_util.Table

let () =
  (* One bounds report per workload. *)
  let t =
    Table.create
      ~headers:[ "workload"; "|V|"; "certified LB"; "Belady UB"; "DFS-order UB" ]
  in
  let analyze name g s =
    let r = Dmc_core.Bounds.analyze g ~s in
    let dfs = Dmc_core.Strategy.io ~order:(Dmc_core.Strategy.dfs_order g) g ~s in
    Table.add_row t
      [
        Printf.sprintf "%s (S=%d)" name s;
        string_of_int (Cdag.n_vertices g);
        string_of_int r.Dmc_core.Bounds.best_lb;
        string_of_int r.Dmc_core.Bounds.belady_ub;
        string_of_int dfs;
      ]
  in
  (* Resolve each kernel through the workload registry — the same
     table `dmc --gen` uses, so these specs work on the CLI too. *)
  let wl = Dmc_gen.Workload.parse_exn in
  analyze "bitonic sort 64" (wl "bitonic:6") 16;
  analyze "fft 64" (wl "fft:6") 16;
  analyze "lu 10" (wl "lu:10") 24;
  analyze "cholesky 10" (wl "cholesky:10") 24;
  analyze "thomas 64" (wl "thomas:64") 12;
  Table.print t;

  (* The structural fingerprints. *)
  Printf.printf "\nstructural fingerprints (all by max-flow):\n";
  Printf.printf "  bitonic 64: %d disjoint input-output lines\n"
    (Dmc_core.Lines.max_disjoint_lines (Dmc_gen.Fft.bitonic_sort 6));
  Printf.printf "  fft 64:     %d disjoint input-output lines, unique path per pair\n"
    (Dmc_core.Lines.max_disjoint_lines (Dmc_gen.Fft.butterfly 6));
  let th = Dmc_gen.Solver.thomas ~n:32 in
  let g = th.Dmc_gen.Solver.th_graph in
  let turn = th.Dmc_gen.Solver.forward.(31) in
  let w = Dmc_core.Wavefront.witness g turn in
  Printf.printf
    "  thomas 32:  wavefront %d at the forward/backward turn (witness verifies: %b)\n"
    (List.length w.Dmc_core.Wavefront.paths)
    (Dmc_core.Wavefront.verify_witness g w);

  (* Sorting vs FFT: the same pass behaviour.  Compare the bitonic
     network's measured I/O against the n log^2 n work it does and the
     FFT bound shape. *)
  Printf.printf
    "\nthe sorting network under capacity sweeps (cf. Aggarwal-Vitter):\n\n";
  let t2 = Table.create ~headers:[ "S"; "bitonic 64 UB"; "fft 64 UB" ] in
  List.iter
    (fun s ->
      Table.add_row t2
        [
          string_of_int s;
          string_of_int (Dmc_core.Strategy.io (Dmc_gen.Fft.bitonic_sort 6) ~s);
          string_of_int (Dmc_core.Strategy.io (Dmc_gen.Fft.butterfly 6) ~s);
        ])
    [ 8; 16; 32; 64 ];
  Table.print t2;
  Printf.printf
    "\nBoth fall as S grows and the network costs a log n factor more —\n\
     its log^2 n stages vs the butterfly's log n.\n"
